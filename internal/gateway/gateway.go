// Package gateway is the scale-out serving tier: one endpoint surface
// (/v1/predict, /v1/tune, /healthz, /metrics) fronting N serve replicas —
// in-process backends for tests and single-binary deployments, HTTP
// backends for real clusters.
//
// The request path composes four stages, each independently configurable:
//
//  1. Admission: a token bucket per SLO class (declared via the X-SLO-Class
//     header, default best-effort) rejects over-rate classes with the
//     stable 429 envelope before they consume any gateway resources.
//  2. Queueing: admitted requests take a bounded dispatch slot, parking in
//     fcfs, class-priority, or shortest-job-first order when the replicas
//     are saturated.
//  3. Routing: a pluggable policy — round-robin, least-loaded
//     (outstanding-request EWMA), or plan-fingerprint affinity (rendezvous
//     hashing, so each replica's plan and body caches shard naturally) —
//     picks a healthy replica; transport failures retry on the next-best
//     replica and feed consecutive-failure ejection.
//  4. Forwarding: the raw body is proxied; replica responses, including
//     error envelopes, pass through byte-for-byte with an X-Gateway-Replica
//     header naming the backend that answered.
//
// Health is active and passive: a probe loop ejects replicas that fail
// consecutively (probes or forwards) and readmits them after a seeded
// jittered backoff, with every probabilistic decision drawn from the
// fault package's deterministic uniform stream. The gateway.route and
// gateway.probe injection points make replica loss and rebalancing
// chaos-testable with byte-stable event logs.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"zerotune/internal/fault"
	"zerotune/internal/obs"
	"zerotune/internal/serve"
)

// latencyBounds are the histogram bucket edges (seconds) shared by the
// gateway's latency instruments — same shape as serve's, so dashboards can
// overlay the two tiers.
var latencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// maxBodyBytes mirrors serve's request-body bound.
const maxBodyBytes = 8 << 20

// endpointNames fixes the per-endpoint stat keys and render order.
var endpointNames = []string{"predict", "tune", "feedback", "healthz", "metrics"}

// Options configures a Gateway.
type Options struct {
	// Route selects the routing policy (default affinity).
	Route RoutePolicy
	// Queue selects the dispatch-queue ordering (default fcfs).
	Queue QueuePolicy
	// QueueDepth bounds how many admitted requests may park waiting for a
	// dispatch slot (default 256); beyond it requests get 429 queue_full.
	QueueDepth int
	// MaxConcurrent bounds forwards in flight across all replicas
	// (default 8 × replicas).
	MaxConcurrent int
	// Classes is the SLO class set (default: one unlimited best-effort
	// class). The best-effort class is appended when absent.
	Classes []ClassConfig
	// FailThreshold ejects a replica after this many consecutive
	// transport/probe failures (default 3).
	FailThreshold int
	// ProbeInterval is the background health-probe period (default 1s).
	// Negative disables the loop — tests drive Pool().Probe directly for
	// determinism.
	ProbeInterval time.Duration
	// ForwardRetries is how many additional replicas a request tries after
	// a transport failure (default 2, capped at the replica count).
	ForwardRetries int
	// RequestTimeout bounds each forward attempt (default 30s; negative
	// disables).
	RequestTimeout time.Duration
	// Seed drives every probabilistic health decision (rejoin backoff
	// jitter); same seed + same failure sequence = same transitions.
	Seed uint64
	// Registry receives the gateway metrics (private when nil).
	Registry *obs.Registry
	// Now is the admission clock (default time.Now); injectable for
	// deterministic token-bucket tests.
	Now func() time.Time
}

func (o Options) withDefaults(replicas int) Options {
	if o.Route == "" {
		o.Route = RouteAffinity
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 256
	}
	if o.MaxConcurrent < 1 {
		o.MaxConcurrent = 8 * replicas
	}
	if o.FailThreshold < 1 {
		o.FailThreshold = 3
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.ForwardRetries < 0 {
		o.ForwardRetries = 0
	} else if o.ForwardRetries == 0 {
		o.ForwardRetries = 2
	}
	if o.ForwardRetries > replicas-1 {
		o.ForwardRetries = replicas - 1
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	} else if o.RequestTimeout < 0 {
		o.RequestTimeout = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// endpointStats counts one gateway endpoint.
type endpointStats struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// Gateway fronts a replica pool behind one HTTP surface.
type Gateway struct {
	opts   Options
	reg    *obs.Registry
	pool   *Pool
	router router
	adm    *admission
	queue  *dispatchQueue
	mux    *http.ServeMux

	endpoints map[string]*endpointStats
	spillover *obs.Counter
	routed    map[string]*obs.Counter // per-replica routing decisions
	retries   *obs.Counter

	start     time.Time
	boundAddr atomic.Pointer[string]

	stopOnce sync.Once
	stop     chan struct{}
	probes   sync.WaitGroup
}

// New builds a gateway over the given replicas. Backend names must be
// unique — affinity hashes them and metrics label by them.
func New(backends []serve.Backend, opts Options) (*Gateway, error) {
	if len(backends) == 0 {
		return nil, errors.New("gateway: no backends")
	}
	if len(backends) > 64 {
		return nil, fmt.Errorf("gateway: %d backends exceeds the 64-replica pool bound", len(backends))
	}
	seen := make(map[string]bool, len(backends))
	for _, b := range backends {
		if b.Name() == "" {
			return nil, errors.New("gateway: backend with empty name")
		}
		if seen[b.Name()] {
			return nil, fmt.Errorf("gateway: duplicate backend name %q", b.Name())
		}
		seen[b.Name()] = true
	}
	opts = opts.withDefaults(len(backends))
	rt, err := newRouter(opts.Route)
	if err != nil {
		return nil, err
	}
	qp, err := queuePolicy(opts.Queue)
	if err != nil {
		return nil, err
	}
	opts.Queue = qp
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	adm, err := newAdmission(opts.Classes, opts.Now, reg)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		opts:      opts,
		reg:       reg,
		pool:      newPool(backends, opts.Seed, opts.FailThreshold, reg),
		router:    rt,
		adm:       adm,
		queue:     newDispatchQueue(qp, opts.MaxConcurrent, opts.QueueDepth),
		mux:       http.NewServeMux(),
		endpoints: make(map[string]*endpointStats, len(endpointNames)),
		spillover: reg.Counter("zerotune_gateway_spillover_total"),
		retries:   reg.Counter("zerotune_gateway_forward_retries_total"),
		routed:    make(map[string]*obs.Counter, len(backends)),
		start:     time.Now(),
		stop:      make(chan struct{}),
	}
	for _, name := range endpointNames {
		l := obs.L("endpoint", name)
		g.endpoints[name] = &endpointStats{
			requests: reg.Counter("zerotune_gateway_requests_total", l),
			errors:   reg.Counter("zerotune_gateway_request_errors_total", l),
			latency:  reg.Histogram("zerotune_gateway_request_duration_seconds", latencyBounds, 1024, l),
		}
	}
	for _, r := range g.pool.Replicas() {
		g.routed[r.Name()] = reg.Counter("zerotune_gateway_route_decisions_total",
			obs.L("policy", string(rt.policy())), obs.L("replica", r.Name()))
	}
	reg.GaugeFunc("zerotune_gateway_fairness_jain", g.adm.jainFairness)
	reg.GaugeFunc("zerotune_gateway_queue_depth", func() float64 { return float64(g.queue.depth()) })
	reg.GaugeFunc("zerotune_gateway_replicas_healthy", func() float64 { return float64(g.pool.HealthyCount()) })
	reg.GaugeFunc("zerotune_gateway_uptime_seconds", func() float64 { return time.Since(g.start).Seconds() })

	g.mux.HandleFunc("POST /v1/predict", g.instrument("predict", g.proxyHandler("predict")))
	g.mux.HandleFunc("POST /v1/tune", g.instrument("tune", g.proxyHandler("tune")))
	g.mux.HandleFunc("POST /v1/feedback", g.instrument("feedback", g.proxyHandler("feedback")))
	g.mux.HandleFunc("GET /healthz", g.instrument("healthz", g.handleHealthz))
	g.mux.HandleFunc("GET /metrics", g.instrument("metrics", g.handleMetrics))
	return g, nil
}

// Start launches the background probe loop (no-op when ProbeInterval < 0).
func (g *Gateway) Start() {
	if g.opts.ProbeInterval <= 0 {
		return
	}
	g.probes.Add(1)
	go func() {
		defer g.probes.Done()
		t := time.NewTicker(g.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-t.C:
				ctx, cancel := forwardContext(context.Background(), g.opts.RequestTimeout)
				g.pool.Probe(ctx)
				cancel()
			}
		}
	}()
}

// Close stops the probe loop. In-flight requests are the HTTP server's to
// drain; the gateway holds no request state of its own.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.probes.Wait()
}

// Pool exposes the replica pool (tests drive probes through it).
func (g *Gateway) Pool() *Pool { return g.pool }

// Metrics returns the gateway's metrics registry.
func (g *Gateway) Metrics() *obs.Registry { return g.reg }

// SetBoundAddr records the gateway's own listener address for /healthz.
func (g *Gateway) SetBoundAddr(addr string) { g.boundAddr.Store(&addr) }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// statusWriter remembers the response code for error counting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request/error/latency accounting.
func (g *Gateway) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := g.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		ep.requests.Inc()
		if sw.status >= 400 {
			ep.errors.Inc()
		}
		ep.latency.Observe(time.Since(start).Seconds())
	}
}

// forwardContext bounds one forward attempt; a non-positive timeout means
// no per-attempt deadline beyond the parent's.
func forwardContext(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, d)
}

// fingerprintBody is FNV-1a over the raw request bytes — the affinity key.
// Byte-identical requests (the replica body cache's unit of sharing) always
// route together; semantically-identical-but-differently-encoded requests
// still coalesce inside whichever replica owns each encoding.
func fingerprintBody(body []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(body)
	return h.Sum64()
}

// proxyHandler builds the forwarding handler for one /v1 endpoint.
func (g *Gateway) proxyHandler(endpoint string) http.HandlerFunc {
	path := "/v1/" + endpoint
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("gateway: read request: %w", err))
			return
		}

		// Stage 1: admission.
		cls := g.adm.class(r.Header.Get(SLOClassHeader))
		if !cls.allow(g.opts.Now()) {
			cls.rejected.Inc()
			writeError(w, http.StatusTooManyRequests, ErrAdmissionRejected)
			return
		}
		cls.admitted.Inc()

		// Stage 2: a dispatch slot, in queue-policy order.
		enq := time.Now()
		if err := g.queue.acquire(ctx, cls.cfg.Priority, len(body)); err != nil {
			switch {
			case errors.Is(err, errGatewayQueueFull):
				writeError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, context.Canceled):
				writeError(w, statusClientClosedRequest, err)
			default:
				writeError(w, http.StatusServiceUnavailable, err)
			}
			return
		}
		defer g.queue.release()
		cls.queueWait.Observe(time.Since(enq).Seconds())

		// Stages 3+4: route and forward, retrying transport failures on the
		// next-best replica.
		key := fingerprintBody(body)
		replicas := g.pool.Replicas()
		var tried uint64
		var lastErr error
		for attempt := 0; attempt <= g.opts.ForwardRetries; attempt++ {
			rep, spill := g.router.pick(replicas, key, tried)
			if rep == nil {
				break
			}
			tried |= 1 << uint(rep.idx)
			if attempt > 0 {
				g.retries.Inc()
			}
			if spill {
				g.spillover.Inc()
			}
			g.routed[rep.Name()].Inc()
			if err := fault.Inject(fault.GatewayRoute); err != nil {
				g.pool.recordFailure(rep)
				lastErr = err
				continue
			}
			rep.requests.Inc()
			rep.noteDispatch()
			fctx, cancel := forwardContext(ctx, g.opts.RequestTimeout)
			fstart := time.Now()
			status, resp, err := rep.backend.Call(fctx, path, body)
			cancel()
			rep.noteDone()
			rep.forwardS.Observe(time.Since(fstart).Seconds())
			if err != nil {
				// Transport failure: the replica never answered. Feed
				// ejection and try the next-best replica — unless the client
				// itself is gone.
				g.pool.recordFailure(rep)
				lastErr = err
				if ctx.Err() != nil {
					break
				}
				continue
			}
			g.pool.recordSuccess(rep)
			if status >= 200 && status < 300 {
				cls.goodput.Inc()
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Gateway-Replica", rep.Name())
			w.WriteHeader(status)
			_, _ = w.Write(resp)
			return
		}

		switch {
		case ctx.Err() != nil && errors.Is(ctx.Err(), context.Canceled):
			writeError(w, statusClientClosedRequest, context.Canceled)
		case lastErr == nil:
			writeError(w, http.StatusServiceUnavailable, ErrNoReplica)
		default:
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("%w: %w", ErrBackendUnavailable, lastErr))
		}
	}
}

// HealthResponse is the gateway's /healthz payload.
type HealthResponse struct {
	// Status is "ok" (all healthy), "degraded" (some ejected) or
	// "unavailable" (nothing routable; served as 503).
	Status string `json:"status"`
	// Addr is the gateway's own bound listener address, when recorded.
	Addr     string          `json:"addr,omitempty"`
	Route    string          `json:"route"`
	Queue    string          `json:"queue"`
	Replicas []ReplicaHealth `json:"replicas"`
}

// ReplicaHealth is one pool member's health view.
type ReplicaHealth struct {
	Name        string  `json:"name"`
	State       string  `json:"state"` // "healthy" | "ejected"
	Outstanding int64   `json:"outstanding"`
	LoadEWMA    float64 `json:"load_ewma"`
	Ejections   uint64  `json:"ejections"`
	Rejoins     uint64  `json:"rejoins"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Route: string(g.router.policy()),
		Queue: string(g.opts.Queue),
	}
	if p := g.boundAddr.Load(); p != nil {
		resp.Addr = *p
	}
	healthy := 0
	for _, rep := range g.pool.Replicas() {
		state := "ejected"
		if rep.Healthy() {
			state = "healthy"
			healthy++
		}
		resp.Replicas = append(resp.Replicas, ReplicaHealth{
			Name:        rep.Name(),
			State:       state,
			Outstanding: rep.Outstanding(),
			LoadEWMA:    rep.Load(),
			Ejections:   rep.ejections.Load(),
			Rejoins:     rep.rejoins.Load(),
		})
	}
	status := http.StatusOK
	switch {
	case healthy == 0:
		resp.Status = "unavailable"
		status = http.StatusServiceUnavailable
	case healthy < len(resp.Replicas):
		resp.Status = "degraded"
	default:
		resp.Status = "ok"
	}
	writeJSON(w, status, resp)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = g.reg.WritePrometheus(w)
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// Summary renders the shutdown digest: per-endpoint traffic, per-class
// admission/goodput, per-replica routing and health transitions, and the
// final fairness index.
func (g *Gateway) Summary() string {
	var b []byte
	w := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	w("gateway: uptime %s, %d/%d replicas healthy, route=%s queue=%s\n",
		time.Since(g.start).Round(time.Millisecond), g.pool.HealthyCount(),
		len(g.pool.Replicas()), g.router.policy(), g.opts.Queue)
	for _, name := range endpointNames {
		ep := g.endpoints[name]
		if n := ep.requests.Load(); n > 0 {
			w("gateway: %-8s %6d requests, %d errors\n", name, n, ep.errors.Load())
		}
	}
	for _, c := range g.adm.ordered {
		w("gateway: class %-12s admitted=%d rejected=%d goodput=%d\n",
			c.cfg.Name, c.admitted.Load(), c.rejected.Load(), c.goodput.Load())
	}
	for _, r := range g.pool.Replicas() {
		w("gateway: replica %-12s routed=%d failures=%d ejections=%d rejoins=%d\n",
			r.Name(), g.routed[r.Name()].Load(), r.failures.Load(),
			r.ejections.Load(), r.rejoins.Load())
	}
	w("gateway: spillovers=%d retries=%d fairness=%.3f", g.spillover.Load(),
		g.retries.Load(), g.adm.jainFairness())
	return string(b)
}

package gateway

import (
	"context"
	"errors"
	"net/http"

	"zerotune/internal/fault"
	"zerotune/internal/serve"
)

// Sentinel errors of the gateway layer. Replica-originated errors pass
// through verbatim (the replicas already speak the stable envelope); these
// cover the failures the gateway itself produces.
var (
	// ErrAdmissionRejected is returned when an SLO class's token bucket is
	// empty — the class is over its contracted rate. Mapped to 429 with
	// code "admission_rejected" so clients can distinguish their own
	// over-rate from gateway-wide queue pressure.
	ErrAdmissionRejected = errors.New("gateway: admission rejected (SLO class over rate)")
	// ErrGatewayQueueFull is returned when the dispatch queue's wait line
	// is at capacity — gateway-wide backpressure, 429 like the replica
	// batcher's own queue-full.
	errGatewayQueueFull = errors.New("gateway: dispatch queue full")
	// ErrNoReplica is returned when no healthy replica remains to route to.
	ErrNoReplica = errors.New("gateway: no healthy replica")
	// ErrBackendUnavailable is returned when every routable replica failed
	// at the transport level for one request (all retries exhausted).
	ErrBackendUnavailable = errors.New("gateway: backend unavailable")
	// errProbeUnhealthy marks a probe that reached a replica that answered
	// non-200 — alive, but not fit to serve.
	errProbeUnhealthy = errors.New("gateway: replica probe answered non-200")
)

// ErrGatewayQueueFull is the exported view of the dispatch-queue sentinel.
var ErrGatewayQueueFull = errGatewayQueueFull

// statusClientClosedRequest mirrors serve's non-standard 499 for cancelled
// requests.
const statusClientClosedRequest = 499

// gatewayErrorCode maps a gateway-originated error to the stable code of
// the shared error envelope.
func gatewayErrorCode(status int, err error) string {
	switch {
	case errors.Is(err, ErrAdmissionRejected):
		return "admission_rejected"
	case errors.Is(err, errGatewayQueueFull):
		return "queue_full"
	case errors.Is(err, ErrNoReplica):
		return "no_replica"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, ErrBackendUnavailable):
		return "backend_unavailable"
	case fault.IsInjected(err):
		return "fault_injected"
	}
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusTooManyRequests:
		return "queue_full"
	case statusClientClosedRequest:
		return "canceled"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

// KnownErrorCodes lists every code a gateway response may carry: the
// gateway's own plus everything a fronted replica can emit (replica error
// bodies pass through byte-for-byte). Chaos harnesses assert against this
// set.
func KnownErrorCodes() []string {
	own := []string{"admission_rejected", "no_replica", "backend_unavailable"}
	return append(own, serve.KnownErrorCodes()...)
}

// writeError writes the shared error envelope with the gateway code map.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error serve.ErrorBody `json:"error"`
	}{serve.ErrorBody{Code: gatewayErrorCode(status, err), Message: err.Error()}})
}

package gateway

import (
	"fmt"
	"sync"
	"time"

	"zerotune/internal/obs"
)

// SLOClassHeader is the request header declaring the caller's SLO class.
// Requests without it (or naming an unconfigured class) are treated as the
// default best-effort class.
const SLOClassHeader = "X-SLO-Class"

// DefaultClassName is the class unlabelled traffic belongs to.
const DefaultClassName = "best-effort"

// ClassConfig describes one SLO class: its admission budget (a token
// bucket) and its standing in the priority queue policy.
type ClassConfig struct {
	Name string
	// Rate is the sustained admission budget in requests/second. Zero or
	// negative means unlimited — the class is never admission-rejected.
	Rate float64
	// Burst is the bucket capacity: how many requests above the sustained
	// rate a quiet class may fire at once. Defaults to max(Rate, 1).
	Burst float64
	// Priority orders classes in the "priority" queue policy; higher is
	// served first. Ties fall back to arrival order.
	Priority int
}

// DefaultClasses is the zero-config class set: one unlimited best-effort
// class, so a gateway without -slo flags admits everything.
func DefaultClasses() []ClassConfig {
	return []ClassConfig{{Name: DefaultClassName}}
}

// classState is one class's bucket plus its instruments.
type classState struct {
	cfg ClassConfig

	mu     sync.Mutex
	tokens float64
	last   time.Time

	admitted  *obs.Counter
	rejected  *obs.Counter
	goodput   *obs.Counter // 2xx responses delivered to this class
	queueWait *obs.Histogram
}

// allow takes one token if the bucket has it, refilling by elapsed time
// first. Unlimited classes always admit.
func (c *classState) allow(now time.Time) bool {
	if c.cfg.Rate <= 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.last.IsZero() {
		c.tokens += now.Sub(c.last).Seconds() * c.cfg.Rate
		if c.tokens > c.cfg.Burst {
			c.tokens = c.cfg.Burst
		}
	}
	c.last = now
	if c.tokens < 1 {
		return false
	}
	c.tokens--
	return true
}

// admission holds the per-class token buckets, keyed by the SLO class
// header. The clock is injectable so tests drive refill deterministically.
type admission struct {
	now     func() time.Time
	classes map[string]*classState
	ordered []*classState // configuration order, for fairness + summaries
	def     *classState
}

// newAdmission validates and registers the class set. The default class is
// appended when absent so unlabelled traffic always has a home.
func newAdmission(classes []ClassConfig, now func() time.Time, reg *obs.Registry) (*admission, error) {
	if len(classes) == 0 {
		classes = DefaultClasses()
	}
	a := &admission{now: now, classes: make(map[string]*classState, len(classes)+1)}
	add := func(cfg ClassConfig) error {
		if cfg.Name == "" {
			return fmt.Errorf("gateway: SLO class with empty name")
		}
		if _, dup := a.classes[cfg.Name]; dup {
			return fmt.Errorf("gateway: duplicate SLO class %q", cfg.Name)
		}
		if cfg.Rate > 0 && cfg.Burst < 1 {
			cfg.Burst = cfg.Rate
			if cfg.Burst < 1 {
				cfg.Burst = 1
			}
		}
		l := obs.L("class", cfg.Name)
		c := &classState{
			cfg:       cfg,
			tokens:    cfg.Burst,
			admitted:  reg.Counter("zerotune_gateway_class_admitted_total", l),
			rejected:  reg.Counter("zerotune_gateway_class_rejected_total", l),
			goodput:   reg.Counter("zerotune_gateway_class_goodput_total", l),
			queueWait: reg.Histogram("zerotune_gateway_queue_wait_seconds", latencyBounds, 1024, l),
		}
		a.classes[cfg.Name] = c
		a.ordered = append(a.ordered, c)
		return nil
	}
	for _, cfg := range classes {
		if err := add(cfg); err != nil {
			return nil, err
		}
	}
	if _, ok := a.classes[DefaultClassName]; !ok {
		if err := add(ClassConfig{Name: DefaultClassName}); err != nil {
			return nil, err
		}
	}
	a.def = a.classes[DefaultClassName]
	return a, nil
}

// class resolves a header value to its class, defaulting unknown and empty
// names to best-effort rather than rejecting them — an unrecognized label is
// a client with no contract, not an error.
func (a *admission) class(name string) *classState {
	if c, ok := a.classes[name]; ok {
		return c
	}
	return a.def
}

// jainFairness computes Jain's fairness index J = (Σx)² / (n·Σx²) over the
// per-class goodput counters: 1.0 when every class receives identical
// goodput, approaching 1/n as one class monopolizes the gateway. Classes
// are weighted equally — the index is a detector for starvation introduced
// by admission or priority configuration, exported as a gauge on /metrics.
func (a *admission) jainFairness() float64 {
	var sum, sumSq float64
	for _, c := range a.ordered {
		x := float64(c.goodput.Load())
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1 // no traffic: trivially fair
	}
	return sum * sum / (float64(len(a.ordered)) * sumSq)
}

package gateway

import (
	"fmt"
	"sync/atomic"

	"zerotune/internal/fault"
)

// RoutePolicy names a replica-selection strategy.
type RoutePolicy string

const (
	// RouteRoundRobin cycles through healthy replicas in order.
	RouteRoundRobin RoutePolicy = "round-robin"
	// RouteLeastLoaded picks the healthy replica with the lowest
	// outstanding-request EWMA, so slow or saturated replicas shed load to
	// their peers automatically.
	RouteLeastLoaded RoutePolicy = "least-loaded"
	// RouteAffinity rendezvous-hashes the request fingerprint over replica
	// names: a given plan always lands on the same replica while it is
	// healthy, so per-replica plan and body caches shard naturally instead
	// of each replica warming the full working set. When the owner is
	// ejected the key spills to the runner-up and snaps back on rejoin.
	RouteAffinity RoutePolicy = "affinity"
)

// router picks a replica for one forward attempt. replicas is the full pool
// in index order; tried is a bitmask of indices already attempted for this
// request (retries must fan out, not hammer one backend). A nil result means
// no routable replica remains. spill is affinity-specific: the key's
// rendezvous owner exists but was not routable, so the request landed on a
// fallback replica.
type router interface {
	policy() RoutePolicy
	pick(replicas []*Replica, key uint64, tried uint64) (r *Replica, spill bool)
}

// newRouter resolves a policy name.
func newRouter(p RoutePolicy) (router, error) {
	switch p {
	case RouteRoundRobin:
		return &roundRobinRouter{}, nil
	case RouteLeastLoaded:
		return &leastLoadedRouter{}, nil
	case RouteAffinity, "":
		return &affinityRouter{}, nil
	default:
		return nil, fmt.Errorf("gateway: unknown routing policy %q", p)
	}
}

// routable reports whether r can take this attempt.
func routable(r *Replica, tried uint64) bool {
	return r.Healthy() && tried&(1<<uint(r.idx)) == 0
}

// roundRobinRouter cycles a shared counter, skipping unroutable replicas.
type roundRobinRouter struct{ next atomic.Uint64 }

func (rr *roundRobinRouter) policy() RoutePolicy { return RouteRoundRobin }

func (rr *roundRobinRouter) pick(replicas []*Replica, _ uint64, tried uint64) (*Replica, bool) {
	n := uint64(len(replicas))
	start := rr.next.Add(1) - 1
	for i := uint64(0); i < n; i++ {
		if r := replicas[(start+i)%n]; routable(r, tried) {
			return r, false
		}
	}
	return nil, false
}

// leastLoadedRouter ranks by (load EWMA, outstanding, index): the EWMA is
// the signal, the instantaneous outstanding count breaks near-ties toward
// the genuinely idler replica, and the index makes ties deterministic.
type leastLoadedRouter struct{}

func (*leastLoadedRouter) policy() RoutePolicy { return RouteLeastLoaded }

func (*leastLoadedRouter) pick(replicas []*Replica, _ uint64, tried uint64) (*Replica, bool) {
	var best *Replica
	var bestLoad float64
	var bestOut int64
	for _, r := range replicas {
		if !routable(r, tried) {
			continue
		}
		load, out := r.Load(), r.Outstanding()
		if best == nil || load < bestLoad || (load == bestLoad && out < bestOut) {
			best, bestLoad, bestOut = r, load, out
		}
	}
	return best, false
}

// affinityRouter implements rendezvous (highest-random-weight) hashing: each
// replica scores score(key, name) and the maximum over the full pool owns
// the key. Scores reuse the fault package's seeded splitmix64∘FNV uniform —
// the same keyed-hash machinery the fingerprint and fault layers already
// trust — so placement is a pure function of (key, replica names): stable
// across gateway restarts, independent of replica order, and with minimal
// disruption (only the ejected owner's keys move) on membership change.
type affinityRouter struct{}

func (*affinityRouter) policy() RoutePolicy { return RouteAffinity }

// AffinityScore ranks replica ownership of a key under rendezvous hashing:
// the replica whose name scores highest for the key owns it. Exported so the
// capacity planner's simulated gateway (internal/desim) places requests with
// the *same* function the live gateway routes with — simulated cache
// sharding then matches production placement exactly, not approximately.
func AffinityScore(key uint64, name string) float64 {
	return fault.Uniform(key, "gateway/affinity/"+name, 0)
}

func (*affinityRouter) pick(replicas []*Replica, key uint64, tried uint64) (*Replica, bool) {
	var owner, best *Replica
	var ownerScore, bestScore float64
	for _, r := range replicas {
		s := AffinityScore(key, r.Name())
		if owner == nil || s > ownerScore {
			owner, ownerScore = r, s
		}
		if !routable(r, tried) {
			continue
		}
		if best == nil || s > bestScore {
			best, bestScore = r, s
		}
	}
	return best, best != nil && best != owner
}

package gateway

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// HTTPBackend fronts one remote serve replica over HTTP — the deployment
// counterpart of serve.InProcessBackend. Transport errors (dial refused,
// reset, timeout) surface as Go errors so the pool's ejection machinery
// sees them; any HTTP response, error envelopes included, passes through
// as (status, body).
type HTTPBackend struct {
	name   string
	base   string
	client *http.Client
}

// NewHTTPBackend wraps the replica at baseURL (scheme://host:port). The
// name defaults to the URL's host:port when empty. The client timeout is a
// transport-level backstop; per-request deadlines come from the context.
func NewHTTPBackend(name, baseURL string, timeout time.Duration) (*HTTPBackend, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("gateway: backend url %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("gateway: backend url %q: scheme must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("gateway: backend url %q: missing host", baseURL)
	}
	if name == "" {
		name = u.Host
	}
	return &HTTPBackend{
		name:   name,
		base:   strings.TrimRight(u.String(), "/"),
		client: &http.Client{Timeout: timeout},
	}, nil
}

// Name implements serve.Backend.
func (b *HTTPBackend) Name() string { return b.name }

// Call implements serve.Backend: POST for /v1/* endpoints, GET otherwise.
func (b *HTTPBackend) Call(ctx context.Context, path string, body []byte) (int, []byte, error) {
	method := http.MethodGet
	var rd io.Reader
	if strings.HasPrefix(path, "/v1/") {
		method = http.MethodPost
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

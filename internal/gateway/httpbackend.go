package gateway

import (
	"context"
	"fmt"
	"net/url"
	"time"

	"zerotune/internal/client"
)

// HTTPBackend fronts one remote serve replica over HTTP — the deployment
// counterpart of serve.InProcessBackend. It delegates the wire work to the
// shared typed client (internal/client), which bounds response reads and
// keeps request construction in one place. Transport errors (dial refused,
// reset, timeout) surface as Go errors so the pool's ejection machinery
// sees them; any HTTP response, error envelopes included, passes through
// as (status, body).
type HTTPBackend struct {
	name string
	c    *client.Client
}

// NewHTTPBackend wraps the replica at baseURL (scheme://host:port). The
// name defaults to the URL's host:port when empty. The client timeout is a
// transport-level backstop; per-request deadlines come from the context.
func NewHTTPBackend(name, baseURL string, timeout time.Duration) (*HTTPBackend, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("gateway: backend url %q: %w", baseURL, err)
	}
	c, err := client.New(baseURL, client.WithTimeout(timeout), client.WithMaxResponseBytes(maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("gateway: backend url %q: %w", baseURL, err)
	}
	if name == "" {
		name = u.Host
	}
	return &HTTPBackend{name: name, c: c}, nil
}

// Name implements serve.Backend.
func (b *HTTPBackend) Name() string { return b.name }

// Call implements serve.Backend: POST for /v1/* endpoints, GET otherwise.
func (b *HTTPBackend) Call(ctx context.Context, path string, body []byte) (int, []byte, error) {
	return b.c.Call(ctx, path, body)
}

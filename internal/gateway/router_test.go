package gateway

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zerotune/internal/obs"
	"zerotune/internal/serve"
)

// fakeBackend is a scriptable replica: per-call latency, transport failure
// toggling and call counting, for routing and health tests that need no real
// model.
type fakeBackend struct {
	name    string
	calls   atomic.Int64
	failing atomic.Bool
	latency time.Duration
	status  int
	resp    []byte
}

func newFakeBackend(name string) *fakeBackend {
	return &fakeBackend{name: name, status: 200, resp: []byte(`{"ok":true}`)}
}

func (b *fakeBackend) Name() string { return b.name }

func (b *fakeBackend) Call(ctx context.Context, path string, body []byte) (int, []byte, error) {
	if b.failing.Load() {
		return 0, nil, fmt.Errorf("fake: %s down", b.name)
	}
	b.calls.Add(1)
	if b.latency > 0 {
		select {
		case <-time.After(b.latency):
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		}
	}
	return b.status, b.resp, nil
}

// testPool builds a pool of fake backends with the default threshold.
func testPool(t *testing.T, seed uint64, names ...string) (*Pool, []*fakeBackend) {
	t.Helper()
	var fakes []*fakeBackend
	var backends []serve.Backend
	for _, n := range names {
		f := newFakeBackend(n)
		fakes = append(fakes, f)
		backends = append(backends, f)
	}
	return newPool(backends, seed, 3, obs.NewRegistry()), fakes
}

// TestAffinityDeterministicPlacement: rendezvous placement is a pure
// function of (key, replica names) — two independently built pools place a
// key population identically, and the population spreads over every replica.
func TestAffinityDeterministicPlacement(t *testing.T) {
	names := []string{"replica-0", "replica-1", "replica-2"}
	place := func() []string {
		pool, _ := testPool(t, 1, names...)
		rt := &affinityRouter{}
		out := make([]string, 0, 500)
		for key := uint64(0); key < 500; key++ {
			r, spill := rt.pick(pool.Replicas(), key, 0)
			if r == nil {
				t.Fatal("no replica picked with a fully healthy pool")
			}
			if spill {
				t.Fatalf("key %d spilled with a fully healthy pool", key)
			}
			out = append(out, r.Name())
		}
		return out
	}
	a, b := place(), place()
	byName := map[string]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("key %d: placement differs between builds: %s vs %s", i, a[i], b[i])
		}
		byName[a[i]]++
	}
	for _, n := range names {
		if byName[n] == 0 {
			t.Fatalf("replica %s owns no keys out of 500: distribution %v", n, byName)
		}
	}
	t.Logf("placement distribution over 500 keys: %v", byName)
}

// TestAffinitySpilloverAndReturn: ejecting a key's owner moves it — always
// to the same runner-up — and rejoin snaps ownership back. Keys owned by
// other replicas never move (minimal disruption).
func TestAffinitySpilloverAndReturn(t *testing.T) {
	pool, _ := testPool(t, 1, "replica-0", "replica-1", "replica-2")
	rt := &affinityRouter{}
	replicas := pool.Replicas()

	owner := map[uint64]string{}
	for key := uint64(0); key < 200; key++ {
		r, _ := rt.pick(replicas, key, 0)
		owner[key] = r.Name()
	}
	victim := replicas[0]
	pool.eject(victim)

	for key := uint64(0); key < 200; key++ {
		r, spill := rt.pick(replicas, key, 0)
		if owner[key] != victim.Name() {
			if spill || r.Name() != owner[key] {
				t.Fatalf("key %d: owner %s is healthy but placement moved to %s (spill=%v)",
					key, owner[key], r.Name(), spill)
			}
			continue
		}
		if !spill {
			t.Fatalf("key %d: owner %s ejected but pick reported no spill", key, victim.Name())
		}
		if r.Name() == victim.Name() {
			t.Fatalf("key %d: routed to ejected replica", key)
		}
		// Spill target is deterministic: picking again gives the same replica.
		r2, _ := rt.pick(replicas, key, 0)
		if r2.Name() != r.Name() {
			t.Fatalf("key %d: spill target unstable: %s vs %s", key, r.Name(), r2.Name())
		}
	}

	pool.rejoin(victim)
	for key := uint64(0); key < 200; key++ {
		r, spill := rt.pick(replicas, key, 0)
		if spill || r.Name() != owner[key] {
			t.Fatalf("key %d: ownership did not return after rejoin (got %s, want %s)",
				key, r.Name(), owner[key])
		}
	}
}

// TestRoundRobinSkipsEjected: a healthy pool splits evenly; with a replica
// ejected the cycle covers exactly the healthy set (the ejected slot's share
// falls to its scan successor, so evenness is only guaranteed pool-wide).
func TestRoundRobinSkipsEjected(t *testing.T) {
	pool, _ := testPool(t, 1, "replica-0", "replica-1", "replica-2")
	replicas := pool.Replicas()

	rt := &roundRobinRouter{}
	got := map[string]int{}
	for i := 0; i < 60; i++ {
		r, _ := rt.pick(replicas, 0, 0)
		got[r.Name()]++
	}
	if got["replica-0"] != 20 || got["replica-1"] != 20 || got["replica-2"] != 20 {
		t.Fatalf("round-robin skew over a healthy pool: %v", got)
	}

	pool.eject(replicas[1])
	got = map[string]int{}
	for i := 0; i < 60; i++ {
		r, _ := rt.pick(replicas, 0, 0)
		got[r.Name()]++
	}
	if got["replica-1"] != 0 {
		t.Fatalf("round-robin routed %d requests to an ejected replica", got["replica-1"])
	}
	if got["replica-0"] == 0 || got["replica-2"] == 0 {
		t.Fatalf("round-robin starved a healthy replica: %v", got)
	}
}

// TestRouterHonorsTriedMask: retries must fan out to untried replicas and
// report exhaustion once every healthy replica has been attempted.
func TestRouterHonorsTriedMask(t *testing.T) {
	pool, _ := testPool(t, 1, "replica-0", "replica-1", "replica-2")
	replicas := pool.Replicas()
	for _, rt := range []router{&roundRobinRouter{}, &leastLoadedRouter{}, &affinityRouter{}} {
		var tried uint64
		seen := map[string]bool{}
		for i := 0; i < 3; i++ {
			r, _ := rt.pick(replicas, 7, tried)
			if r == nil {
				t.Fatalf("%s: nil pick with %d untried replicas", rt.policy(), 3-i)
			}
			if seen[r.Name()] {
				t.Fatalf("%s: picked %s twice despite tried mask", rt.policy(), r.Name())
			}
			seen[r.Name()] = true
			tried |= 1 << uint(r.idx)
		}
		if r, _ := rt.pick(replicas, 7, tried); r != nil {
			t.Fatalf("%s: picked %s after every replica was tried", rt.policy(), r.Name())
		}
	}
}

// TestLeastLoadedConvergence: under skewed service latency a slow replica
// accumulates outstanding requests and the router sheds traffic to its
// faster peers.
func TestLeastLoadedConvergence(t *testing.T) {
	slow := newFakeBackend("slow")
	slow.latency = 20 * time.Millisecond
	fastA, fastB := newFakeBackend("fast-a"), newFakeBackend("fast-b")

	g, err := New([]serve.Backend{slow, fastA, fastB}, Options{
		Route:         RouteLeastLoaded,
		ProbeInterval: -1,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	rt := g.router
	replicas := g.pool.Replicas()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				r, _ := rt.pick(replicas, 0, 0)
				r.noteDispatch()
				_, _, err := r.backend.Call(context.Background(), "/v1/predict", nil)
				r.noteDone()
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	slowCalls := slow.calls.Load()
	fastCalls := fastA.calls.Load() + fastB.calls.Load()
	if slowCalls*4 > fastCalls {
		t.Fatalf("least-loaded did not shed from the slow replica: slow=%d fast=%d",
			slowCalls, fastCalls)
	}
	t.Logf("least-loaded split: slow=%d fast-a=%d fast-b=%d",
		slowCalls, fastA.calls.Load(), fastB.calls.Load())
}

// TestRoutePolicyValidation: unknown policies fail construction.
func TestRoutePolicyValidation(t *testing.T) {
	if _, err := newRouter("random"); err == nil {
		t.Fatal("newRouter accepted an unknown policy")
	}
	if _, err := queuePolicy("lifo"); err == nil {
		t.Fatal("queuePolicy accepted an unknown policy")
	}
}

// Package optisample implements the paper's OptiSample training-data
// enumeration strategy (Algorithm 1, Defs. 3–8) and the Random baseline.
//
// OptiSample walks the operator graph bottom-up: it estimates each
// operator's input rate from the source event rate and the *estimated*
// selectivities of upstream operators (deliberately imperfect — the paper
// keeps estimation error in, so the model also sees inefficient plans), and
// assigns each operator a parallelism degree proportional to its estimated
// input rate (P = sf · In_ER, Defs. 7–8), clamped to the cluster's cores.
package optisample

import (
	"math"

	"zerotune/internal/cluster"
	"zerotune/internal/queryplan"
	"zerotune/internal/tensor"
)

// Strategy assigns parallelism degrees to every operator of a plan.
type Strategy interface {
	// Assign sets p's parallelism degrees in place. rng drives any
	// stochastic choices of the strategy.
	Assign(p *queryplan.PQP, c *cluster.Cluster, rng *tensor.RNG) error
	// Name identifies the strategy in experiment output.
	Name() string
}

// instanceCapacity is the empirical per-instance processing capacity
// (events/second) by operator type — the paper's scaling factor sf is the
// reciprocal of these, "determined by empirically analysing when the given
// streaming operators are backpressured" (footnote 3).
func instanceCapacity(t queryplan.OpType) float64 {
	switch t {
	case queryplan.OpSource:
		return 450_000
	case queryplan.OpFilter:
		return 320_000
	case queryplan.OpAggregate:
		return 140_000
	case queryplan.OpJoin:
		return 90_000
	case queryplan.OpSink:
		return 400_000
	default:
		return 200_000
	}
}

// OptiSample is Algorithm 1.
type OptiSample struct {
	// Headroom over-provisions the analytical degree to keep plans off the
	// backpressure cliff (1.2 = 20% slack).
	Headroom float64
	// SelectivityNoise is the σ of the log-normal error applied to the
	// estimated selectivities; 0 uses the declared values exactly.
	SelectivityNoise float64
	// ExploreFactors, when non-empty, multiplies each assigned degree by a
	// factor sampled from this set — the exploration component that lets
	// the model observe under- and over-provisioned plans.
	ExploreFactors []float64
	// MaxDegree caps any single degree (0 = cluster total cores).
	MaxDegree int
}

// Default returns the OptiSample configuration used for training-data
// generation: analytical degrees with mild estimation error and
// ×{¼,½,1,1,2,4} exploration. The exploration range deliberately covers
// the candidate multipliers the optimizer later prices, so the model sees
// both heavily under-provisioned (backpressured) and over-provisioned
// plans during training.
func Default() *OptiSample {
	return &OptiSample{
		Headroom:         1.2,
		SelectivityNoise: 0.3,
		ExploreFactors:   []float64{0.25, 0.5, 1, 1, 2, 4},
	}
}

// Exact returns an OptiSample without estimation error or exploration — the
// deterministic analytical assignment the optimizer seeds its search with.
func Exact() *OptiSample {
	return &OptiSample{Headroom: 1.2}
}

// Name implements Strategy.
func (o *OptiSample) Name() string { return "optisample" }

// Assign implements Strategy (Algorithm 1).
func (o *OptiSample) Assign(p *queryplan.PQP, c *cluster.Cluster, rng *tensor.RNG) error {
	order, err := p.Query.TopoOrder()
	if err != nil {
		return err
	}
	maxP := o.MaxDegree
	if maxP <= 0 {
		maxP = c.TotalCores()
	}
	if maxP > c.TotalCores() {
		maxP = c.TotalCores()
	}

	// Bottom-up rate estimation with (imperfect) selectivities,
	// Defs. 3–6 / Algorithm 1 lines 3–6.
	outRate := make(map[int]float64, len(order))
	inRate := make(map[int]float64, len(order))
	for _, id := range order {
		op := p.Query.Op(id)
		ups := p.Query.Upstream(id)
		in := 0.0
		if op.Type == queryplan.OpSource {
			in = op.EventRate // line 12: ComputeSourceER
		} else {
			for _, up := range ups {
				in += outRate[up]
			}
		}
		inRate[id] = in
		outRate[id] = o.estimateOutRate(op, p.Query, ups, outRate, in, rng)
	}

	// Degree assignment (Defs. 7–8): P = sf · In_ER with per-type scaling.
	for _, id := range order {
		op := p.Query.Op(id)
		analytical := o.Headroom * inRate[id] / instanceCapacity(op.Type)
		degree := int(math.Ceil(analytical))
		if len(o.ExploreFactors) > 0 && rng != nil {
			degree = int(math.Ceil(float64(degree) * tensor.Pick(rng, o.ExploreFactors)))
		}
		if degree < 1 {
			degree = 1
		}
		if degree > maxP {
			degree = maxP
		}
		p.SetDegree(id, degree)
	}
	return nil
}

// noisySel perturbs a declared selectivity with the configured estimation
// error (the paper keeps estimation imperfect on purpose).
func (o *OptiSample) noisySel(sel float64, rng *tensor.RNG) float64 {
	if o.SelectivityNoise > 0 && rng != nil {
		sel *= rng.LogNormal(0, o.SelectivityNoise)
	}
	if sel < 0 {
		sel = 0
	}
	return sel
}

// windowHorizon returns the estimated window coverage in seconds and the
// emission frequency (windows/second) from the *declared* window
// specification and the estimated input rate — exactly the stream
// statistics an offline estimator has access to.
func windowHorizon(op *queryplan.Operator, inRate float64) (horizonSec, windowsPerSec float64) {
	if inRate < 1e-9 {
		inRate = 1e-9
	}
	length := op.WindowLength
	slide := op.SlidingLength
	if op.WindowType != queryplan.WindowSliding || slide <= 0 {
		slide = length
	}
	switch op.WindowPolicy {
	case queryplan.PolicyTime: // milliseconds
		return length / 1000, 1000 / slide
	case queryplan.PolicyCount: // tuples
		return length / inRate, inRate / slide
	default:
		return 0, 0
	}
}

// estimateOutRate applies Defs. 3–6: the operator's estimated output rate
// from its estimated input rates, its (noisy) declared selectivity and its
// declared window specification. Join amplification is modelled the way
// Def. 5 implies — each arriving tuple matches sel·|W_opposite| buffered
// tuples — because under-estimating it leaves downstream operators
// hopelessly under-provisioned.
func (o *OptiSample) estimateOutRate(op *queryplan.Operator, q *queryplan.Query,
	ups []int, outRate map[int]float64, in float64, rng *tensor.RNG) float64 {

	switch op.Type {
	case queryplan.OpSource, queryplan.OpSink:
		return in
	case queryplan.OpFilter:
		return in * o.noisySel(op.Selectivity, rng)
	case queryplan.OpAggregate:
		horizon, wps := windowHorizon(op, in)
		windowTuples := in * horizon
		groups := math.Max(1, math.Min(o.noisySel(op.Selectivity, rng)*windowTuples, windowTuples))
		return wps * groups
	case queryplan.OpJoin:
		if len(ups) != 2 {
			return in * o.noisySel(op.Selectivity, rng)
		}
		in1 := math.Max(outRate[ups[0]], 1e-9)
		in2 := math.Max(outRate[ups[1]], 1e-9)
		horizon, _ := windowHorizon(op, in)
		w1, w2 := in1*horizon, in2*horizon
		return o.noisySel(op.Selectivity, rng) * (in1*w2 + in2*w1)
	default:
		return in
	}
}

// Random assigns uniformly random degrees in [1, MaxDegree] — the sampling
// baseline ZT-Random of Exp. 4.
type Random struct {
	// MaxDegree caps the sampled degrees (0 = cluster total cores, itself
	// capped at 128, the top of the paper's XL parallelism category).
	MaxDegree int
}

// Name implements Strategy.
func (r *Random) Name() string { return "random" }

// Assign implements Strategy.
func (r *Random) Assign(p *queryplan.PQP, c *cluster.Cluster, rng *tensor.RNG) error {
	maxP := r.MaxDegree
	if maxP <= 0 {
		maxP = c.TotalCores()
		if maxP > 128 {
			maxP = 128
		}
	}
	if maxP > c.TotalCores() {
		maxP = c.TotalCores()
	}
	for _, op := range p.Query.Ops {
		p.SetDegree(op.ID, 1+rng.Intn(maxP))
	}
	return nil
}

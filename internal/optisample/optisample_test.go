package optisample

import (
	"testing"

	"zerotune/internal/cluster"
	"zerotune/internal/queryplan"
	"zerotune/internal/tensor"
)

func linear(rate float64) *queryplan.Query {
	return queryplan.Linear(
		queryplan.SourceSpec{EventRate: rate, TupleWidth: 3, DataType: queryplan.TypeDouble},
		queryplan.FilterSpec{Func: queryplan.CmpLE, LiteralClass: queryplan.TypeDouble, Selectivity: 0.5},
		queryplan.AggSpec{Func: queryplan.AggAvg, Class: queryplan.TypeDouble, KeyClass: queryplan.TypeInt,
			Selectivity: 0.2, Window: queryplan.WindowSpec{Type: queryplan.WindowTumbling, Policy: queryplan.PolicyCount, Length: 50}},
	)
}

func bigCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(6, cluster.SeenTypes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOptiSampleScalesWithRate(t *testing.T) {
	c := bigCluster(t)
	strat := Exact()
	low := queryplan.NewPQP(linear(1000))
	if err := strat.Assign(low, c, nil); err != nil {
		t.Fatal(err)
	}
	high := queryplan.NewPQP(linear(2_000_000))
	if err := strat.Assign(high, c, nil); err != nil {
		t.Fatal(err)
	}
	// At 1k ev/s everything fits one instance.
	for _, o := range low.Query.Ops {
		if low.Degree(o.ID) != 1 {
			t.Fatalf("low-rate degree for %v = %d, want 1", o.Type, low.Degree(o.ID))
		}
	}
	// At 2M ev/s the filter needs several instances.
	if high.Degree(1) < 4 {
		t.Fatalf("high-rate filter degree %d, want >= 4", high.Degree(1))
	}
}

func TestOptiSampleDownstreamFollowsSelectivity(t *testing.T) {
	c := bigCluster(t)
	p := queryplan.NewPQP(linear(2_000_000))
	if err := Exact().Assign(p, c, nil); err != nil {
		t.Fatal(err)
	}
	// Aggregate input is halved by the 0.5-selectivity filter, but the
	// aggregate per-instance capacity is lower; the key property is that
	// degrees follow estimated rates: filter degree scales with the full
	// rate, aggregate with the filtered one.
	filterIn := 2_000_000.0
	aggIn := filterIn * 0.5
	wantFilter := int(1.2*filterIn/320_000) + 1
	wantAgg := int(1.2*aggIn/140_000) + 1
	if d := p.Degree(1); d < wantFilter-1 || d > wantFilter+1 {
		t.Fatalf("filter degree %d, want ≈%d", d, wantFilter)
	}
	if d := p.Degree(2); d < wantAgg-1 || d > wantAgg+1 {
		t.Fatalf("aggregate degree %d, want ≈%d", d, wantAgg)
	}
}

func TestOptiSampleRespectsCores(t *testing.T) {
	small, err := cluster.New(1, []cluster.NodeType{{Name: "tiny", Cores: 2, FreqGHz: 2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := queryplan.NewPQP(linear(5_000_000))
	if err := Exact().Assign(p, small, nil); err != nil {
		t.Fatal(err)
	}
	for _, o := range p.Query.Ops {
		if p.Degree(o.ID) > small.TotalCores() {
			t.Fatalf("degree %d exceeds cores %d", p.Degree(o.ID), small.TotalCores())
		}
	}
}

func TestOptiSampleExplorationVaries(t *testing.T) {
	c := bigCluster(t)
	strat := Default()
	rng := tensor.NewRNG(1)
	seen := map[int]bool{}
	for i := 0; i < 30; i++ {
		p := queryplan.NewPQP(linear(1_000_000))
		if err := strat.Assign(p, c, rng); err != nil {
			t.Fatal(err)
		}
		seen[p.Degree(1)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("exploration produced no variety: %v", seen)
	}
}

func TestOptiSampleDeterministicWithoutNoise(t *testing.T) {
	c := bigCluster(t)
	p1 := queryplan.NewPQP(linear(500_000))
	p2 := queryplan.NewPQP(linear(500_000))
	if err := Exact().Assign(p1, c, nil); err != nil {
		t.Fatal(err)
	}
	if err := Exact().Assign(p2, c, nil); err != nil {
		t.Fatal(err)
	}
	for _, o := range p1.Query.Ops {
		if p1.Degree(o.ID) != p2.Degree(o.ID) {
			t.Fatal("Exact OptiSample not deterministic")
		}
	}
}

func TestRandomStrategyBounds(t *testing.T) {
	c := bigCluster(t)
	rng := tensor.NewRNG(2)
	strat := &Random{}
	maxSeen := 0
	for i := 0; i < 50; i++ {
		p := queryplan.NewPQP(linear(1000))
		if err := strat.Assign(p, c, rng); err != nil {
			t.Fatal(err)
		}
		for _, o := range p.Query.Ops {
			d := p.Degree(o.ID)
			if d < 1 || d > c.TotalCores() {
				t.Fatalf("random degree %d out of bounds", d)
			}
			if d > maxSeen {
				maxSeen = d
			}
		}
	}
	if maxSeen < 10 {
		t.Fatalf("random strategy never explored high degrees (max %d)", maxSeen)
	}
}

func TestRandomIgnoresRates(t *testing.T) {
	// Random must produce high degrees even for trivial loads — that is
	// exactly why it is data-inefficient.
	c := bigCluster(t)
	rng := tensor.NewRNG(3)
	high := 0
	for i := 0; i < 50; i++ {
		p := queryplan.NewPQP(linear(100))
		if err := (&Random{}).Assign(p, c, rng); err != nil {
			t.Fatal(err)
		}
		if p.Degree(1) > 8 {
			high++
		}
	}
	if high == 0 {
		t.Fatal("random never over-provisioned a trivial query")
	}
}

func TestJoinRatesSumInputs(t *testing.T) {
	srcs := []queryplan.SourceSpec{
		{EventRate: 1_000_000, TupleWidth: 3, DataType: queryplan.TypeInt},
		{EventRate: 1_000_000, TupleWidth: 3, DataType: queryplan.TypeInt},
	}
	filts := []queryplan.FilterSpec{
		{Func: queryplan.CmpGT, LiteralClass: queryplan.TypeInt, Selectivity: 1.0},
		{Func: queryplan.CmpGT, LiteralClass: queryplan.TypeInt, Selectivity: 1.0},
	}
	joins := []queryplan.JoinSpec{{KeyClass: queryplan.TypeInt, Selectivity: 0.001,
		Window: queryplan.WindowSpec{Type: queryplan.WindowTumbling, Policy: queryplan.PolicyTime, Length: 1000}}}
	agg := queryplan.AggSpec{Func: queryplan.AggSum, Class: queryplan.TypeInt, KeyClass: queryplan.TypeInt,
		Selectivity: 0.3, Window: queryplan.WindowSpec{Type: queryplan.WindowTumbling, Policy: queryplan.PolicyCount, Length: 25}}
	q := queryplan.NWayJoin(2, srcs, filts, joins, agg)

	c, err := cluster.New(8, cluster.UnseenTypes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	p := queryplan.NewPQP(q)
	if err := Exact().Assign(p, c, nil); err != nil {
		t.Fatal(err)
	}
	var joinID int
	for _, o := range q.Ops {
		if o.Type == queryplan.OpJoin {
			joinID = o.ID
		}
	}
	// Join input 2M ev/s at 90k capacity with 1.2 headroom ≈ 27.
	if d := p.Degree(joinID); d < 20 {
		t.Fatalf("join degree %d, want >= 20 for 2M ev/s", d)
	}
}

func TestStrategyNames(t *testing.T) {
	if Default().Name() != "optisample" || (&Random{}).Name() != "random" {
		t.Fatal("strategy names")
	}
}

// Package client is the one HTTP client of the zerotune serving stack: a
// typed Go API over /v1/predict, /v1/tune, /v1/feedback, /v1/reload and
// /healthz that decodes the stack's stable error envelope
// `{"error":{"code","message"}}` into exported sentinel errors.
//
// Everything in the repo that speaks the wire protocol — the gateway's
// remote-replica backend, the load harness's remote target, the chaos
// driver — goes through this package, so there is exactly one place that
// builds requests, bounds response reads (io.LimitReader; a misbehaving
// backend cannot balloon memory), and maps wire codes to errors.
//
// Two transports share every code path above them: New dials a base URL
// over a real *http.Client, NewForHandler drives an http.Handler in
// process. The handler transport deliberately shields the handler from the
// caller's context and abandons the in-flight call when that context ends —
// the semantics a watchdog harness needs to detect a wedged handler instead
// of deadlocking on it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// DefaultMaxResponseBytes bounds how much of any response body the client
// reads, mirroring the server's own request-body cap.
const DefaultMaxResponseBytes = 8 << 20

// SLOClassHeader carries the SLO class consumed by the gateway's admission
// control (duplicated from gateway so the client depends on neither tier).
const SLOClassHeader = "X-SLO-Class"

// Client issues requests against one serving endpoint (a serve replica or a
// gateway — both speak the same protocol). Safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	handler http.Handler
	maxBody int64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (connection pools,
// custom transports). Ignored by handler-backed clients.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithTimeout sets a transport-level per-request backstop on the underlying
// HTTP client. Per-call deadlines still come from the context.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.hc.Timeout = d }
}

// WithMaxResponseBytes bounds response-body reads (default 8 MiB).
func WithMaxResponseBytes(n int64) Option {
	return func(c *Client) {
		if n > 0 {
			c.maxBody = n
		}
	}
}

// New builds a client for the endpoint at baseURL (scheme://host[:port]).
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: base url %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base url %q: scheme must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("client: base url %q: missing host", baseURL)
	}
	c := &Client{
		base:    strings.TrimRight(u.String(), "/"),
		hc:      &http.Client{},
		maxBody: DefaultMaxResponseBytes,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// NewForHandler builds a client that drives h in process — no sockets. Each
// call runs h.ServeHTTP on its own goroutine against a private recorder;
// the handler sees an uncancellable context, and if the caller's context
// ends first the call is abandoned (the goroutine keeps running, its
// response is discarded) and the context's error is returned as a transport
// error. That makes a wedged handler observable as context.DeadlineExceeded
// instead of a deadlock — exactly what the chaos driver's stuck-request
// watchdog relies on.
func NewForHandler(h http.Handler, opts ...Option) *Client {
	c := &Client{
		base:    "http://in-process",
		hc:      &http.Client{},
		handler: h,
		maxBody: DefaultMaxResponseBytes,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the base URL requests are issued against.
func (c *Client) Base() string { return c.base }

// CallOption adjusts one request.
type CallOption func(*http.Request)

// WithSLOClass stamps the request with the gateway's SLO-class header.
func WithSLOClass(class string) CallOption {
	return func(r *http.Request) {
		if class != "" {
			r.Header.Set(SLOClassHeader, class)
		}
	}
}

// WithHeader sets one request header.
func WithHeader(key, value string) CallOption {
	return func(r *http.Request) { r.Header.Set(key, value) }
}

// Call is the raw protocol primitive, mirroring serve.Backend.Call: POST
// for /v1/* paths, GET otherwise; transport-level failures return err; any
// HTTP response — error envelopes included — passes through as (status,
// body) with the body read bounded. The typed methods are built on it.
func (c *Client) Call(ctx context.Context, path string, body []byte, opts ...CallOption) (int, []byte, error) {
	method := http.MethodGet
	var rd io.Reader
	if strings.HasPrefix(path, "/v1/") {
		method = http.MethodPost
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	for _, o := range opts {
		o(req)
	}
	if c.handler != nil {
		return c.callHandler(req)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.maxBody))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// handlerResult is one in-process call's outcome, handed over the channel
// so an abandoned call's recorder is never touched by the caller again.
type handlerResult struct {
	status int
	body   []byte
}

// callHandler serves req on the in-process handler, honoring the request
// context by abandonment (see NewForHandler).
func (c *Client) callHandler(req *http.Request) (int, []byte, error) {
	// The handler must not observe the caller's cancellation: the watchdog
	// contract is "detect a stuck handler", and cancelling the request would
	// instead unwedge handlers that respect their context.
	inner := req.WithContext(context.WithoutCancel(req.Context()))
	if inner.Body == nil {
		// Handlers are written against net/http's guarantee of a non-nil
		// Body; uphold it on the in-process transport too.
		inner.Body = http.NoBody
	}
	done := make(chan handlerResult, 1)
	go func() {
		rec := &memRecorder{header: make(http.Header), status: http.StatusOK}
		c.handler.ServeHTTP(rec, inner)
		body := rec.body.Bytes()
		if int64(len(body)) > c.maxBody {
			body = body[:c.maxBody]
		}
		done <- handlerResult{status: rec.status, body: body}
	}()
	select {
	case res := <-done:
		return res.status, res.body, nil
	case <-req.Context().Done():
		return 0, nil, req.Context().Err()
	}
}

// memRecorder is a minimal in-memory ResponseWriter for the handler
// transport (net/http/httptest stays out of the non-test dependency graph).
type memRecorder struct {
	header http.Header
	body   bytes.Buffer
	status int
	wrote  bool
}

func (r *memRecorder) Header() http.Header { return r.header }

func (r *memRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
}

func (r *memRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.body.Write(p)
}

// do runs one typed round trip: marshal in (nil means empty body), issue
// the call, and either decode a 2xx body into out or decode the error
// envelope into an *APIError.
func (c *Client) do(ctx context.Context, path string, in, out any, opts ...CallOption) error {
	var body []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode %s request: %w", path, err)
		}
		body = b
	}
	status, data, err := c.Call(ctx, path, body, opts...)
	if err != nil {
		return err
	}
	if status < 200 || status > 299 {
		return decodeAPIError(status, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decode %s response: %w", path, err)
		}
	}
	return nil
}

// decodeAPIError turns a non-2xx response into an *APIError, tolerating
// bodies that are not the envelope (proxies, panics mid-write).
func decodeAPIError(status int, body []byte) error {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		return &APIError{Status: status, Code: env.Error.Code, Message: env.Error.Message}
	}
	msg := strings.TrimSpace(string(body))
	if len(msg) > 256 {
		msg = msg[:256]
	}
	return &APIError{Status: status, Message: msg}
}

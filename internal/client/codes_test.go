package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"testing"

	"zerotune/internal/client"
	"zerotune/internal/gateway"
	"zerotune/internal/serve"
)

// TestEveryKnownCodeHasSentinel pins the contract the client exists for:
// every stable wire code either tier can emit maps to an exported sentinel,
// a decoded envelope errors.Is-matches it, and the client's own code list
// carries nothing the tiers no longer emit. (External test package: the
// gateway imports client, so this cannot live inside package client.)
func TestEveryKnownCodeHasSentinel(t *testing.T) {
	codes := gateway.KnownErrorCodes() // superset: includes serve's
	if len(codes) <= len(serve.KnownErrorCodes()) {
		t.Fatal("gateway code list no longer includes serve's")
	}
	emitted := make(map[string]bool)
	for _, code := range codes {
		emitted[code] = true
		sentinel, ok := client.SentinelForCode(code)
		if !ok {
			t.Errorf("wire code %q has no exported sentinel", code)
			continue
		}
		// Round-trip through a real decode: a handler answering with the
		// envelope must come back as the matching sentinel.
		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintf(w, `{"error":{"code":%q,"message":"m"}}`, code)
		})
		_, err := client.NewForHandler(h).Predict(context.Background(), &serve.PredictRequest{})
		if !errors.Is(err, sentinel) {
			t.Errorf("decoded %q does not errors.Is its sentinel: %v", code, err)
		}
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Code != code || apiErr.Status != http.StatusInternalServerError {
			t.Errorf("decoded %q lost envelope fields: %+v", code, apiErr)
		}
	}
	want := make([]string, 0, len(emitted))
	for code := range emitted {
		want = append(want, code)
	}
	sort.Strings(want)
	if got := client.KnownCodes(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("client code list out of sync with the tiers:\n client: %v\n  tiers: %v", got, want)
	}
}

package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"zerotune/internal/serve"
)

func TestNonEnvelopeBodyClassifiedByStatus(t *testing.T) {
	cases := []struct {
		status int
		want   error
	}{
		{429, ErrQueueFull},
		{400, ErrBadRequest},
		{503, ErrUnavailable},
		{499, ErrCanceled},
		{500, ErrInternal},
		{502, ErrInternal},
	}
	for _, c := range cases {
		err := decodeAPIError(c.status, []byte("<html>proxy says no</html>"))
		if !errors.Is(err, c.want) {
			t.Errorf("status %d: got %v, want %v", c.status, err, c.want)
		}
	}
}

func TestNewValidatesBaseURL(t *testing.T) {
	for _, bad := range []string{"", "ftp://host", "http://", "not a url\x7f://"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	c, err := New("http://127.0.0.1:9999/")
	if err != nil {
		t.Fatal(err)
	}
	if c.Base() != "http://127.0.0.1:9999" {
		t.Fatalf("base not normalized: %q", c.Base())
	}
}

// TestResponseReadBounded: a handler streaming more than the cap must not
// balloon the returned body past MaxResponseBytes.
func TestResponseReadBounded(t *testing.T) {
	big := strings.Repeat("x", 4096)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, big)
	})
	c := NewForHandler(h, WithMaxResponseBytes(1024))
	_, body, err := c.Call(context.Background(), "/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 1024 {
		t.Fatalf("read %d bytes past the 1024 cap", len(body))
	}
}

// TestHandlerTransportMethodAndHeaders: /v1/* goes out as POST with the JSON
// content type; class and custom headers land on the request.
func TestHandlerTransportMethodAndHeaders(t *testing.T) {
	var gotMethod, gotCT, gotClass, gotX string
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotMethod, gotCT = r.Method, r.Header.Get("Content-Type")
		gotClass, gotX = r.Header.Get(SLOClassHeader), r.Header.Get("X-Extra")
		w.Write([]byte("{}"))
	})
	c := NewForHandler(h)
	_, _, err := c.Call(context.Background(), "/v1/predict", []byte(`{}`),
		WithSLOClass("gold"), WithHeader("X-Extra", "1"))
	if err != nil {
		t.Fatal(err)
	}
	if gotMethod != http.MethodPost || gotCT != "application/json" {
		t.Fatalf("v1 call: method=%s ct=%s", gotMethod, gotCT)
	}
	if gotClass != "gold" || gotX != "1" {
		t.Fatalf("headers lost: class=%q extra=%q", gotClass, gotX)
	}
	if _, _, err := c.Call(context.Background(), "/healthz", nil); err != nil {
		t.Fatal(err)
	}
	if gotMethod != http.MethodGet {
		t.Fatalf("non-v1 call sent as %s", gotMethod)
	}
}

// TestHandlerTransportAbandonsStuckHandler: the watchdog contract. A wedged
// handler must surface as the caller's context error, and the handler must
// never observe the caller's cancellation.
func TestHandlerTransportAbandonsStuckHandler(t *testing.T) {
	sawCancel := make(chan bool, 1)
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			sawCancel <- true
		case <-release:
			sawCancel <- false
		}
	})
	c := NewForHandler(h)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := c.Call(ctx, "/v1/predict", []byte(`{}`))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stuck handler surfaced as %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("abandonment took implausibly long")
	}
	close(release)
	if <-sawCancel {
		t.Fatal("handler observed the caller's cancellation — watchdog semantics broken")
	}
}

// TestTypedMethodsAgainstServe drives the real server in process: typed
// round trips decode, and error statuses come back as typed errors.
func TestTypedMethodsAgainstServe(t *testing.T) {
	s := serve.New(serve.Options{})
	defer s.Close()
	c := NewForHandler(s)
	ctx := context.Background()

	// No model installed: predict is 503 no_model.
	_, err := c.Predict(ctx, &serve.PredictRequest{})
	if !errors.Is(err, ErrNoModel) && !errors.Is(err, ErrBadRequest) {
		t.Fatalf("modelless predict: %v", err)
	}
	// Health on a modelless server is non-200 → typed error.
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("health reported OK without a model")
	}
	// Learning disabled: feedback is 503 learning_disabled.
	_, err = c.Feedback(ctx, &serve.FeedbackRequest{Fingerprint: "00", ObservedLatencyMs: 1, ObservedThroughputEPS: 1})
	if !errors.Is(err, ErrLearningDisabled) {
		t.Fatalf("feedback on non-learning server: %v, want ErrLearningDisabled", err)
	}
	// Malformed body through the raw Call: enveloped 400.
	status, body, err := c.Call(ctx, "/v1/predict", []byte("{nope"))
	if err != nil || status != http.StatusBadRequest {
		t.Fatalf("malformed predict: status=%d err=%v", status, err)
	}
	var env struct {
		Error struct{ Code, Message string } `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
		t.Fatalf("400 body is not the envelope: %s", body)
	}
}

package client

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
)

// Typed views of the stable wire codes. The serving stack promises that
// every error response, on every endpoint and every tier, is the envelope
// `{"error":{"code","message"}}` with a code drawn from a fixed set; the
// client decodes that envelope into an *APIError whose Unwrap yields the
// sentinel matching the code, so callers branch with errors.Is instead of
// string-matching messages or memorizing status numbers.
var (
	// ErrQueueFull: code "queue_full" — batcher or gateway dispatch queue
	// at capacity (HTTP 429).
	ErrQueueFull = errors.New("client: queue full")
	// ErrTimeout: code "timeout" — the request deadline elapsed server-side.
	ErrTimeout = errors.New("client: request timed out")
	// ErrCanceled: code "canceled" — the client went away (HTTP 499).
	ErrCanceled = errors.New("client: request canceled")
	// ErrShuttingDown: code "shutting_down" — submitted after shutdown began.
	ErrShuttingDown = errors.New("client: server shutting down")
	// ErrStaleEntry: code "stale_entry" — a failed cache leader's followers.
	ErrStaleEntry = errors.New("client: stale cache entry")
	// ErrNoModel: code "no_model" — the registry has no installed model.
	ErrNoModel = errors.New("client: no model installed")
	// ErrCircuitOpen: code "circuit_open" — learned path unavailable and no
	// fallback estimator.
	ErrCircuitOpen = errors.New("client: circuit open")
	// ErrLearningDisabled: code "learning_disabled" — /v1/feedback on a
	// server built without learning.
	ErrLearningDisabled = errors.New("client: learning disabled")
	// ErrUnknownFingerprint: code "unknown_fingerprint" — feedback for a
	// plan absent from the recent-prediction index.
	ErrUnknownFingerprint = errors.New("client: unknown plan fingerprint")
	// ErrFaultInjected: code "fault_injected" — a chaos-injected failure.
	ErrFaultInjected = errors.New("client: injected fault")
	// ErrChecksumMismatch: code "checksum_mismatch" — artifact integrity
	// failure during a reload.
	ErrChecksumMismatch = errors.New("client: artifact checksum mismatch")
	// ErrBadRequest: code "bad_request" — malformed payload.
	ErrBadRequest = errors.New("client: bad request")
	// ErrInvalidModel: code "invalid_model" — the model file failed
	// load-validate during a reload.
	ErrInvalidModel = errors.New("client: invalid model")
	// ErrUnavailable: code "unavailable" — generic 503.
	ErrUnavailable = errors.New("client: service unavailable")
	// ErrInternal: code "internal" — unclassified server error.
	ErrInternal = errors.New("client: internal server error")
	// ErrAdmissionRejected: code "admission_rejected" — the SLO class's
	// token bucket is empty at the gateway.
	ErrAdmissionRejected = errors.New("client: admission rejected")
	// ErrNoReplica: code "no_replica" — no healthy replica behind the
	// gateway.
	ErrNoReplica = errors.New("client: no healthy replica")
	// ErrBackendUnavailable: code "backend_unavailable" — every routable
	// replica failed at the transport level.
	ErrBackendUnavailable = errors.New("client: backend unavailable")
)

// sentinelByCode maps every stable wire code to its exported sentinel.
// serve.KnownErrorCodes and gateway.KnownErrorCodes are the authoritative
// lists; the client tests assert this map covers both.
var sentinelByCode = map[string]error{
	"queue_full":          ErrQueueFull,
	"timeout":             ErrTimeout,
	"canceled":            ErrCanceled,
	"shutting_down":       ErrShuttingDown,
	"stale_entry":         ErrStaleEntry,
	"no_model":            ErrNoModel,
	"circuit_open":        ErrCircuitOpen,
	"learning_disabled":   ErrLearningDisabled,
	"unknown_fingerprint": ErrUnknownFingerprint,
	"fault_injected":      ErrFaultInjected,
	"checksum_mismatch":   ErrChecksumMismatch,
	"bad_request":         ErrBadRequest,
	"invalid_model":       ErrInvalidModel,
	"unavailable":         ErrUnavailable,
	"internal":            ErrInternal,
	"admission_rejected":  ErrAdmissionRejected,
	"no_replica":          ErrNoReplica,
	"backend_unavailable": ErrBackendUnavailable,
}

// SentinelForCode returns the exported sentinel a wire code decodes to.
// The second result is false for codes outside the stable set.
func SentinelForCode(code string) (error, bool) {
	s, ok := sentinelByCode[code]
	return s, ok
}

// KnownCodes returns the stable wire codes this client maps to sentinels,
// sorted; tests assert it stays in sync with the serve and gateway lists.
func KnownCodes() []string {
	out := make([]string, 0, len(sentinelByCode))
	for code := range sentinelByCode {
		out = append(out, code)
	}
	sort.Strings(out)
	return out
}

// APIError is a non-2xx response decoded from the error envelope. Status is
// always set; Code is empty when the body was not a well-formed envelope
// (then the sentinel is derived from the status alone).
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("client: http %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("client: http %d %s: %s", e.Status, e.Code, e.Message)
}

// Unwrap yields the sentinel for the wire code, so
// errors.Is(err, client.ErrQueueFull) works on any decoded error.
func (e *APIError) Unwrap() error {
	if s, ok := sentinelByCode[e.Code]; ok {
		return s
	}
	// No (or unknown) code: classify by status so transportless callers
	// still get coarse errors.Is behavior.
	switch e.Status {
	case http.StatusTooManyRequests:
		return ErrQueueFull
	case http.StatusBadRequest:
		return ErrBadRequest
	case http.StatusServiceUnavailable:
		return ErrUnavailable
	case statusClientClosedRequest:
		return ErrCanceled
	}
	return ErrInternal
}

// statusClientClosedRequest mirrors the stack's non-standard 499.
const statusClientClosedRequest = 499

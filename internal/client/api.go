package client

import (
	"context"

	"zerotune/internal/serve"
)

// The typed endpoints. Request/response shapes are the serve wire types —
// the gateway proxies them unmodified, so one method set covers both tiers.

// Predict asks for the cost estimate of one placed parallel plan.
func (c *Client) Predict(ctx context.Context, req *serve.PredictRequest, opts ...CallOption) (*serve.PredictResponse, error) {
	var out serve.PredictResponse
	if err := c.do(ctx, "/v1/predict", req, &out, opts...); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tune asks the optimizer to pick parallelism degrees for a logical query.
func (c *Client) Tune(ctx context.Context, req *serve.TuneRequest, opts ...CallOption) (*serve.TuneResponse, error) {
	var out serve.TuneResponse
	if err := c.do(ctx, "/v1/tune", req, &out, opts...); err != nil {
		return nil, err
	}
	return &out, nil
}

// Feedback reports the observed runtime cost of a previously predicted
// plan, closing the continual-learning loop.
func (c *Client) Feedback(ctx context.Context, req *serve.FeedbackRequest, opts ...CallOption) (*serve.FeedbackResponse, error) {
	var out serve.FeedbackResponse
	if err := c.do(ctx, "/v1/feedback", req, &out, opts...); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reload hot-swaps the served model (empty path re-reads the current file).
func (c *Client) Reload(ctx context.Context, req *serve.ReloadRequest, opts ...CallOption) (*serve.ReloadResponse, error) {
	var out serve.ReloadResponse
	if err := c.do(ctx, "/v1/reload", req, &out, opts...); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches /healthz. A serving endpoint answers 200; an endpoint
// without a model answers 503, surfaced as an error (errors.Is
// ErrUnavailable / ErrNoModel depending on the body).
func (c *Client) Health(ctx context.Context, opts ...CallOption) (*serve.HealthResponse, error) {
	var out serve.HealthResponse
	if err := c.do(ctx, "/healthz", nil, &out, opts...); err != nil {
		return nil, err
	}
	return &out, nil
}

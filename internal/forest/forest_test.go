package forest

import (
	"math"
	"testing"

	"zerotune/internal/tensor"
)

func makeData(n int, seed uint64, fn func(tensor.Vector) float64) ([]tensor.Vector, []float64) {
	rng := tensor.NewRNG(seed)
	X := make([]tensor.Vector, n)
	y := make([]float64, n)
	for i := range X {
		x := tensor.NewVector(5)
		for j := range x {
			x[j] = rng.Range(-2, 2)
		}
		X[i] = x
		y[i] = fn(x)
	}
	return X, y
}

func TestForestFitsStepFunction(t *testing.T) {
	fn := func(x tensor.Vector) float64 {
		if x[0] > 0 {
			return 10
		}
		return -10
	}
	X, y := makeData(400, 1, fn)
	f, err := Fit(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	Xt, yt := makeData(100, 2, fn)
	var mae float64
	for i := range Xt {
		mae += math.Abs(f.Predict(Xt[i]) - yt[i])
	}
	mae /= float64(len(Xt))
	if mae > 1.5 {
		t.Fatalf("forest MAE %v on step function", mae)
	}
}

func TestForestFitsAdditiveFunction(t *testing.T) {
	fn := func(x tensor.Vector) float64 { return 2*x[0] + x[1]*x[1] }
	X, y := makeData(600, 3, fn)
	f, err := Fit(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	Xt, yt := makeData(100, 4, fn)
	var mae float64
	for i := range Xt {
		mae += math.Abs(f.Predict(Xt[i]) - yt[i])
	}
	mae /= float64(len(Xt))
	if mae > 1.2 {
		t.Fatalf("forest MAE %v on additive function", mae)
	}
}

func TestForestDeterministic(t *testing.T) {
	X, y := makeData(100, 5, func(x tensor.Vector) float64 { return x[0] })
	f1, _ := Fit(X, y, DefaultConfig())
	f2, _ := Fit(X, y, DefaultConfig())
	for i := 0; i < 20; i++ {
		if f1.Predict(X[i]) != f2.Predict(X[i]) {
			t.Fatal("forest not deterministic")
		}
	}
}

func TestForestRejectsBadInput(t *testing.T) {
	if _, err := Fit(nil, nil, DefaultConfig()); err == nil {
		t.Fatal("accepted empty data")
	}
	X, y := makeData(10, 6, func(x tensor.Vector) float64 { return 0 })
	bad := DefaultConfig()
	bad.Trees = 0
	if _, err := Fit(X, y, bad); err == nil {
		t.Fatal("accepted zero trees")
	}
	if _, err := Fit(X, y[:5], DefaultConfig()); err == nil {
		t.Fatal("accepted length mismatch")
	}
}

func TestForestPredictPanicsOnWidth(t *testing.T) {
	X, y := makeData(50, 7, func(x tensor.Vector) float64 { return x[0] })
	f, _ := Fit(X, y, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on width mismatch")
		}
	}()
	f.Predict(tensor.NewVector(3))
}

func TestForestConstantTarget(t *testing.T) {
	X, y := makeData(50, 8, func(x tensor.Vector) float64 { return 7 })
	f, err := Fit(X, y, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Predict(X[0]); math.Abs(got-7) > 1e-9 {
		t.Fatalf("constant target predicted as %v", got)
	}
}

func TestForestStructure(t *testing.T) {
	X, y := makeData(200, 9, func(x tensor.Vector) float64 { return x[0] + x[1] })
	cfg := DefaultConfig()
	cfg.Trees = 10
	cfg.MaxDepth = 4
	f, _ := Fit(X, y, cfg)
	if f.NumTrees() != 10 {
		t.Fatalf("trees %d", f.NumTrees())
	}
	if f.Depth() > 5 {
		t.Fatalf("depth %d exceeds max", f.Depth())
	}
}

func TestForestMinLeafRespected(t *testing.T) {
	X, y := makeData(20, 10, func(x tensor.Vector) float64 { return x[0] })
	cfg := DefaultConfig()
	cfg.MinLeaf = 10
	f, err := Fit(X, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With 20 samples and MinLeaf 10, trees are almost stumps; depth small.
	if f.Depth() > 2 {
		t.Fatalf("depth %d with MinLeaf=10 on 20 samples", f.Depth())
	}
}

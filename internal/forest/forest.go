// Package forest implements a random-forest regressor (bagged CART trees
// with feature subsampling) — the third flat-vector baseline model of the
// paper's evaluation.
package forest

import (
	"fmt"
	"math"
	"sort"

	"zerotune/internal/tensor"
)

// Config holds the forest hyper-parameters.
type Config struct {
	Trees       int
	MaxDepth    int
	MinLeaf     int // minimum samples per leaf
	FeatureFrac float64
	Seed        uint64
}

// DefaultConfig returns a forest sized for the experiment datasets.
func DefaultConfig() Config {
	return Config{Trees: 50, MaxDepth: 12, MinLeaf: 3, FeatureFrac: 0.6, Seed: 1}
}

// Forest is a trained random forest for one regression target.
type Forest struct {
	cfg   Config
	trees []*node
	dim   int
}

// node is a CART tree node; leaves carry the mean target value.
type node struct {
	feature  int
	thresh   float64
	left     *node
	right    *node
	value    float64
	isLeaf   bool
	nSamples int
}

// Fit trains the forest on rows X with targets y.
func Fit(X []tensor.Vector, y []float64, cfg Config) (*Forest, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("forest: bad training set (%d rows, %d targets)", len(X), len(y))
	}
	if cfg.Trees <= 0 || cfg.MaxDepth <= 0 || cfg.MinLeaf <= 0 {
		return nil, fmt.Errorf("forest: invalid config %+v", cfg)
	}
	if cfg.FeatureFrac <= 0 || cfg.FeatureFrac > 1 {
		cfg.FeatureFrac = 1
	}
	f := &Forest{cfg: cfg, dim: len(X[0])}
	rng := tensor.NewRNG(cfg.Seed)
	for t := 0; t < cfg.Trees; t++ {
		// Bootstrap sample.
		idx := make([]int, len(X))
		for i := range idx {
			idx[i] = rng.Intn(len(X))
		}
		tree := f.grow(X, y, idx, 0, rng)
		f.trees = append(f.trees, tree)
	}
	return f, nil
}

// grow recursively builds a CART node over the sample indices.
func (f *Forest) grow(X []tensor.Vector, y []float64, idx []int, depth int, rng *tensor.RNG) *node {
	mean := 0.0
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))

	if depth >= f.cfg.MaxDepth || len(idx) < 2*f.cfg.MinLeaf || pure(y, idx) {
		return &node{isLeaf: true, value: mean, nSamples: len(idx)}
	}

	// Feature subsample.
	nFeat := int(math.Ceil(f.cfg.FeatureFrac * float64(f.dim)))
	feats := rng.Perm(f.dim)[:nFeat]

	bestFeat, bestThresh, bestScore := -1, 0.0, math.Inf(1)
	vals := make([]float64, 0, len(idx))
	for _, feat := range feats {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][feat])
		}
		sort.Float64s(vals)
		// Candidate thresholds: a handful of quantile midpoints.
		for q := 1; q < 8; q++ {
			pos := q * len(vals) / 8
			if pos == 0 || pos >= len(vals) {
				continue
			}
			thresh := (vals[pos-1] + vals[pos]) / 2
			if vals[pos-1] == vals[pos] {
				continue
			}
			score := splitScore(X, y, idx, feat, thresh, f.cfg.MinLeaf)
			if score < bestScore {
				bestFeat, bestThresh, bestScore = feat, thresh, score
			}
		}
	}
	if bestFeat < 0 {
		return &node{isLeaf: true, value: mean, nSamples: len(idx)}
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) < f.cfg.MinLeaf || len(rightIdx) < f.cfg.MinLeaf {
		return &node{isLeaf: true, value: mean, nSamples: len(idx)}
	}
	return &node{
		feature:  bestFeat,
		thresh:   bestThresh,
		left:     f.grow(X, y, leftIdx, depth+1, rng),
		right:    f.grow(X, y, rightIdx, depth+1, rng),
		nSamples: len(idx),
	}
}

// splitScore returns the weighted variance after splitting idx on
// (feat, thresh), or +Inf when a side falls under minLeaf.
func splitScore(X []tensor.Vector, y []float64, idx []int, feat int, thresh float64, minLeaf int) float64 {
	var nL, nR int
	var sumL, sumR, sqL, sqR float64
	for _, i := range idx {
		v := y[i]
		if X[i][feat] <= thresh {
			nL++
			sumL += v
			sqL += v * v
		} else {
			nR++
			sumR += v
			sqR += v * v
		}
	}
	if nL < minLeaf || nR < minLeaf {
		return math.Inf(1)
	}
	varL := sqL - sumL*sumL/float64(nL)
	varR := sqR - sumR*sumR/float64(nR)
	return varL + varR
}

// pure reports whether all targets in idx are (nearly) identical.
func pure(y []float64, idx []int) bool {
	first := y[idx[0]]
	for _, i := range idx[1:] {
		if math.Abs(y[i]-first) > 1e-12 {
			return false
		}
	}
	return true
}

// Predict returns the forest's mean prediction for one row.
func (f *Forest) Predict(x tensor.Vector) float64 {
	if len(x) != f.dim {
		panic(fmt.Sprintf("forest: input width %d, want %d", len(x), f.dim))
	}
	var sum float64
	for _, t := range f.trees {
		sum += predictTree(t, x)
	}
	return sum / float64(len(f.trees))
}

func predictTree(n *node, x tensor.Vector) float64 {
	for !n.isLeaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// NumTrees returns the number of trees in the forest.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Depth returns the maximum depth across trees (for diagnostics).
func (f *Forest) Depth() int {
	maxD := 0
	var walk func(n *node, d int)
	walk = func(n *node, d int) {
		if n == nil {
			return
		}
		if d > maxD {
			maxD = d
		}
		walk(n.left, d+1)
		walk(n.right, d+1)
	}
	for _, t := range f.trees {
		walk(t, 0)
	}
	return maxD
}

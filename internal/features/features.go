// Package features implements ZeroTune's transferable featurization
// (Table I) and the parallel graph representation (Sec. III-C2): every
// logical operator becomes one graph node carrying parallelism-, data- and
// operator-related features; every distinct cluster machine becomes a
// physical resource node; data-flow edges, resource edges and
// operator→resource mapping edges connect them.
//
// All transforms are fixed (log scaling, one-hot encodings) rather than
// fitted to a dataset — a zero-shot model cannot assume it will see the
// test distribution, so no dataset statistics are baked into the encoding.
package features

import (
	"fmt"
	"math"

	"zerotune/internal/cluster"
	"zerotune/internal/queryplan"
	"zerotune/internal/tensor"
)

// Operator feature vector layout. Grouped by the Table I categories so the
// ablation masks (Fig. 11) can blank one category at a time.
const (
	// operator-parallelism category
	FeatDegree      = iota // log2(parallelism degree)
	FeatPartForward        // partitioning one-hot
	FeatPartRebalance
	FeatPartHash
	FeatGrouping // log2(chain-group size)

	// data category
	FeatTupleWidthIn
	FeatTupleWidthOut
	FeatTypeInt // tuple data type one-hot
	FeatTypeDouble
	FeatTypeString
	FeatSelectivity  // log10(selectivity + 1e-6)
	FeatEventRate    // log10(rate + 1), sources only
	FeatInputRate    // log10(estimated input rate + 1): estimated analytically
	FeatOpTypeSource // operator category: operator type one-hot
	FeatOpTypeFilter
	FeatOpTypeAgg
	FeatOpTypeJoin
	FeatOpTypeSink
	FeatCmpLT // filter function one-hot
	FeatCmpLE
	FeatCmpGT
	FeatCmpGE
	FeatCmpEQ
	FeatCmpNE
	FeatLitInt // filter literal class one-hot
	FeatLitDouble
	FeatLitString
	FeatWinTumbling // window type one-hot
	FeatWinSliding
	FeatPolicyCount // window policy one-hot
	FeatPolicyTime
	FeatWindowLength  // log10(length + 1)
	FeatSlidingLength // log10(slide + 1)
	FeatJoinKeyInt    // join key class one-hot
	FeatJoinKeyDouble
	FeatJoinKeyString
	FeatAggClassInt // aggregation class one-hot
	FeatAggClassDouble
	FeatAggClassString
	FeatAggMin // aggregation function one-hot
	FeatAggMax
	FeatAggAvg
	FeatAggSum
	FeatAggCount
	FeatAggKeyInt // aggregation key class one-hot
	FeatAggKeyDouble
	FeatAggKeyString

	// OpFeatDim is the width of an operator node's feature vector.
	OpFeatDim
)

// Resource feature vector layout (Table I, resource category).
const (
	ResFeatCores   = iota // log2(cores)
	ResFeatFreq           // GHz
	ResFeatMem            // log2(GB)
	ResFeatLink           // log2(Gbps + 1)
	ResFeatSlots          // log2(task slots placed on the node + 1)
	ResFeatOversub        // log2(max(1, slots/cores)): slot oversubscription

	// ResFeatDim is the width of a resource node's feature vector.
	ResFeatDim
)

// Mask selects which Table I feature categories are visible to the model —
// the knob behind the Fig. 11 ablation study.
type Mask int

// Feature masks.
const (
	// MaskAll keeps every transferable feature (the full ZeroTune model).
	MaskAll Mask = iota
	// MaskOperatorOnly keeps operator- and data-related features, blanking
	// parallelism- and resource-related ones.
	MaskOperatorOnly
	// MaskParallelismResource keeps parallelism- and resource-related
	// features, blanking operator- and data-related ones.
	MaskParallelismResource
)

// String implements fmt.Stringer.
func (m Mask) String() string {
	switch m {
	case MaskAll:
		return "all"
	case MaskOperatorOnly:
		return "operator-only"
	case MaskParallelismResource:
		return "parallelism+resource"
	default:
		return fmt.Sprintf("mask(%d)", int(m))
	}
}

// parallelismFeatures are the operator-parallelism category indices.
var parallelismFeatures = []int{FeatDegree, FeatPartForward, FeatPartRebalance, FeatPartHash, FeatGrouping}

// operatorDataFeatures are the data + operator category indices (everything
// except the parallelism block; resource features live on resource nodes).
var operatorDataFeatures = func() []int {
	var out []int
	for i := 0; i < OpFeatDim; i++ {
		inPar := false
		for _, p := range parallelismFeatures {
			if i == p {
				inPar = true
				break
			}
		}
		if !inPar {
			out = append(out, i)
		}
	}
	return out
}()

func log10p(x float64) float64 { return math.Log10(x + 1) }

func log2p(x float64) float64 {
	if x < 1 {
		x = 1
	}
	return math.Log2(x)
}

// OpNode is one logical operator in the encoded graph.
type OpNode struct {
	OpID int
	Type queryplan.OpType
	Feat tensor.Vector
}

// ResNode is one physical machine in the encoded graph.
type ResNode struct {
	Name string
	Feat tensor.Vector
}

// MapEdge is one operator→resource mapping edge: Instances of the operator
// run on that resource (the per-instance edge information of Fig. 4 step ②,
// aggregated per distinct machine).
type MapEdge struct {
	OpIdx     int
	ResIdx    int
	Instances int
}

// Graph is the GNN input: the parallel query plan in its graph
// representation.
type Graph struct {
	OpNodes  []OpNode
	ResNodes []ResNode
	// DataEdges are data-flow edges as [from, to] indices into OpNodes,
	// topologically ordered by construction.
	DataEdges [][2]int
	// Mapping holds the operator→resource mapping edges.
	Mapping []MapEdge
	// SinkIdx is the index of the sink node in OpNodes, where the read-out
	// happens.
	SinkIdx int

	// Labels (filled by the dataset builder; zero during pure inference).
	LatencyMs     float64
	ThroughputEPS float64

	// Provenance for result bucketing (experiments).
	Template  string
	AvgDegree float64
}

// Encode builds the graph representation of plan p placed on cluster c.
// The plan must already have a placement (Encode never mutates p).
func Encode(p *queryplan.PQP, c *cluster.Cluster, mask Mask) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("features: %w", err)
	}
	if len(p.Placement) != len(p.Query.Ops) {
		return nil, fmt.Errorf("features: plan has no complete placement (%d of %d operators)",
			len(p.Placement), len(p.Query.Ops))
	}
	order, err := p.Query.TopoOrder()
	if err != nil {
		return nil, err
	}
	grouping := p.GroupingNumber()
	inRates := estimateInputRates(p.Query, order)

	g := &Graph{Template: p.Query.Template, AvgDegree: p.AvgDegree()}
	opIdx := make(map[int]int, len(order))
	for _, id := range order {
		op := p.Query.Op(id)
		feat := encodeOperator(op, p, grouping[id], inRates[id], mask)
		opIdx[id] = len(g.OpNodes)
		g.OpNodes = append(g.OpNodes, OpNode{OpID: id, Type: op.Type, Feat: feat})
		if op.Type == queryplan.OpSink {
			g.SinkIdx = opIdx[id]
		}
	}
	for _, e := range p.Query.Edges {
		g.DataEdges = append(g.DataEdges, [2]int{opIdx[e.From], opIdx[e.To]})
	}

	// Resource nodes: one per distinct machine hosting at least one
	// instance.
	slotLoad := cluster.SlotLoad(p)
	resIdx := make(map[string]int)
	for _, id := range order {
		for _, nodeName := range p.Placement[id] {
			if _, ok := resIdx[nodeName]; ok {
				continue
			}
			n := c.Node(nodeName)
			if n == nil {
				return nil, fmt.Errorf("features: placement references unknown node %q", nodeName)
			}
			feat := encodeResource(n, c.LinkGbps, slotLoad[nodeName], mask)
			resIdx[nodeName] = len(g.ResNodes)
			g.ResNodes = append(g.ResNodes, ResNode{Name: nodeName, Feat: feat})
		}
	}
	// Mapping edges: instances of each operator per machine.
	for _, id := range order {
		counts := make(map[string]int)
		for _, nodeName := range p.Placement[id] {
			counts[nodeName]++
		}
		// Deterministic order: walk the placement slice, emitting each
		// machine once.
		emitted := make(map[string]bool)
		for _, nodeName := range p.Placement[id] {
			if emitted[nodeName] {
				continue
			}
			emitted[nodeName] = true
			g.Mapping = append(g.Mapping, MapEdge{
				OpIdx:     opIdx[id],
				ResIdx:    resIdx[nodeName],
				Instances: counts[nodeName],
			})
		}
	}
	return g, nil
}

// encodeOperator builds one operator node's feature vector.
func encodeOperator(op *queryplan.Operator, p *queryplan.PQP, grouping int, inRate float64, mask Mask) tensor.Vector {
	f := tensor.NewVector(OpFeatDim)

	// operator-parallelism category
	f[FeatDegree] = log2p(float64(p.Degree(op.ID)))
	switch dominantPartitioning(p.Query, op.ID) {
	case queryplan.PartForward:
		f[FeatPartForward] = 1
	case queryplan.PartRebalance:
		f[FeatPartRebalance] = 1
	case queryplan.PartHash:
		f[FeatPartHash] = 1
	}
	f[FeatGrouping] = log2p(float64(grouping))

	// data category
	f[FeatTupleWidthIn] = float64(op.TupleWidthIn) / 4
	f[FeatTupleWidthOut] = float64(op.TupleWidthOut) / 4
	switch op.TupleDataType {
	case queryplan.TypeInt:
		f[FeatTypeInt] = 1
	case queryplan.TypeDouble:
		f[FeatTypeDouble] = 1
	case queryplan.TypeString:
		f[FeatTypeString] = 1
	}
	f[FeatSelectivity] = math.Log10(op.Selectivity + 1e-6)
	f[FeatEventRate] = log10p(op.EventRate)
	f[FeatInputRate] = log10p(inRate)

	// operator category
	switch op.Type {
	case queryplan.OpSource:
		f[FeatOpTypeSource] = 1
	case queryplan.OpFilter:
		f[FeatOpTypeFilter] = 1
	case queryplan.OpAggregate:
		f[FeatOpTypeAgg] = 1
	case queryplan.OpJoin:
		f[FeatOpTypeJoin] = 1
	case queryplan.OpSink:
		f[FeatOpTypeSink] = 1
	}
	switch op.FilterFunc {
	case queryplan.CmpLT:
		f[FeatCmpLT] = 1
	case queryplan.CmpLE:
		f[FeatCmpLE] = 1
	case queryplan.CmpGT:
		f[FeatCmpGT] = 1
	case queryplan.CmpGE:
		f[FeatCmpGE] = 1
	case queryplan.CmpEQ:
		f[FeatCmpEQ] = 1
	case queryplan.CmpNE:
		f[FeatCmpNE] = 1
	}
	switch op.FilterLiteralClass {
	case queryplan.TypeInt:
		f[FeatLitInt] = 1
	case queryplan.TypeDouble:
		f[FeatLitDouble] = 1
	case queryplan.TypeString:
		f[FeatLitString] = 1
	}
	switch op.WindowType {
	case queryplan.WindowTumbling:
		f[FeatWinTumbling] = 1
	case queryplan.WindowSliding:
		f[FeatWinSliding] = 1
	}
	switch op.WindowPolicy {
	case queryplan.PolicyCount:
		f[FeatPolicyCount] = 1
	case queryplan.PolicyTime:
		f[FeatPolicyTime] = 1
	}
	f[FeatWindowLength] = log10p(op.WindowLength)
	f[FeatSlidingLength] = log10p(op.SlidingLength)
	switch op.JoinKeyClass {
	case queryplan.TypeInt:
		f[FeatJoinKeyInt] = 1
	case queryplan.TypeDouble:
		f[FeatJoinKeyDouble] = 1
	case queryplan.TypeString:
		f[FeatJoinKeyString] = 1
	}
	switch op.AggClass {
	case queryplan.TypeInt:
		f[FeatAggClassInt] = 1
	case queryplan.TypeDouble:
		f[FeatAggClassDouble] = 1
	case queryplan.TypeString:
		f[FeatAggClassString] = 1
	}
	switch op.AggFunc {
	case queryplan.AggMin:
		f[FeatAggMin] = 1
	case queryplan.AggMax:
		f[FeatAggMax] = 1
	case queryplan.AggAvg:
		f[FeatAggAvg] = 1
	case queryplan.AggSum:
		f[FeatAggSum] = 1
	case queryplan.AggCount:
		f[FeatAggCount] = 1
	}
	switch op.AggKeyClass {
	case queryplan.TypeInt:
		f[FeatAggKeyInt] = 1
	case queryplan.TypeDouble:
		f[FeatAggKeyDouble] = 1
	case queryplan.TypeString:
		f[FeatAggKeyString] = 1
	}

	applyMask(f, mask)
	return f
}

// applyMask blanks the feature categories hidden by the mask.
func applyMask(f tensor.Vector, mask Mask) {
	switch mask {
	case MaskOperatorOnly:
		for _, i := range parallelismFeatures {
			f[i] = 0
		}
	case MaskParallelismResource:
		for _, i := range operatorDataFeatures {
			f[i] = 0
		}
	}
}

// encodeResource builds one resource node's feature vector.
func encodeResource(n *cluster.Node, linkGbps float64, slots int, mask Mask) tensor.Vector {
	f := tensor.NewVector(ResFeatDim)
	if mask == MaskOperatorOnly {
		// Resource features are part of the blanked categories.
		return f
	}
	f[ResFeatCores] = log2p(float64(n.Type.Cores))
	f[ResFeatFreq] = n.Type.FreqGHz
	f[ResFeatMem] = log2p(float64(n.Type.MemGB))
	f[ResFeatLink] = log2p(linkGbps)
	f[ResFeatSlots] = log2p(float64(slots) + 1)
	// Oversubscription ratio: the contention a slot experiences. The cores
	// and slots features alone cannot identify it when the training
	// hardware grid has near-constant core counts (Table III trains on
	// 8–10-core machines only), so it is encoded explicitly — the model
	// must extrapolate it to 20–64-core unseen machines.
	if n.Type.Cores > 0 {
		f[ResFeatOversub] = log2p(math.Max(1, float64(slots)/float64(n.Type.Cores)))
	}
	return f
}

// dominantPartitioning mirrors the simulator's view: the "heaviest"
// partitioning strategy among the operator's input edges (hash > rebalance
// > forward); sources report rebalance (their stream splits evenly).
func dominantPartitioning(q *queryplan.Query, id int) queryplan.PartitionStrategy {
	op := q.Op(id)
	if op != nil && op.Type == queryplan.OpSource {
		return queryplan.PartRebalance
	}
	best := queryplan.PartForward
	for _, e := range q.InEdges(id) {
		if e.Partitioning > best {
			best = e.Partitioning
		}
	}
	return best
}

// estimateInputRates propagates *estimated* input rates through the logical
// plan using the declared selectivities and window specifications (the
// paper's Defs. 3–6). This is a transferable feature: it derives from
// stream statistics, not from observing the deployment. Join output applies
// Def. 5's amplification (each tuple matches sel·|W_opposite| buffered
// tuples) and window aggregates apply their emission frequency — without
// this, the model cannot see that a join's downstream operators face a much
// higher rate than the sources emit.
func estimateInputRates(q *queryplan.Query, order []int) map[int]float64 {
	out := make(map[int]float64, len(order))
	outRate := make(map[int]float64, len(order))
	for _, id := range order {
		op := q.Op(id)
		ups := q.Upstream(id)
		in := 0.0
		for _, up := range ups {
			in += outRate[up]
		}
		switch op.Type {
		case queryplan.OpSource:
			in = op.EventRate
			outRate[id] = op.EventRate
		case queryplan.OpAggregate:
			horizon, wps := estWindowHorizon(op, in)
			windowTuples := in * horizon
			groups := math.Max(1, math.Min(op.Selectivity*windowTuples, windowTuples))
			outRate[id] = wps * groups
		case queryplan.OpJoin:
			if len(ups) == 2 {
				in1 := math.Max(outRate[ups[0]], 1e-9)
				in2 := math.Max(outRate[ups[1]], 1e-9)
				horizon, _ := estWindowHorizon(op, in)
				outRate[id] = op.Selectivity * (in1*in2*horizon + in2*in1*horizon)
			} else {
				outRate[id] = in * op.Selectivity
			}
		default:
			outRate[id] = in * op.Selectivity
		}
		out[id] = in
	}
	return out
}

// estWindowHorizon mirrors the analytical estimator: window coverage in
// seconds and emissions per second from the declared window spec.
func estWindowHorizon(op *queryplan.Operator, inRate float64) (horizonSec, windowsPerSec float64) {
	if inRate < 1e-9 {
		inRate = 1e-9
	}
	length := op.WindowLength
	slide := op.SlidingLength
	if op.WindowType != queryplan.WindowSliding || slide <= 0 {
		slide = length
	}
	switch op.WindowPolicy {
	case queryplan.PolicyTime:
		return length / 1000, 1000 / slide
	case queryplan.PolicyCount:
		return length / inRate, inRate / slide
	default:
		return 0, 0
	}
}

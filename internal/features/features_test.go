package features

import (
	"math"
	"testing"

	"zerotune/internal/cluster"
	"zerotune/internal/queryplan"
)

func encoded(t *testing.T, degrees map[int]int) (*Graph, *queryplan.PQP) {
	t.Helper()
	q := queryplan.Linear(
		queryplan.SourceSpec{EventRate: 10_000, TupleWidth: 3, DataType: queryplan.TypeDouble},
		queryplan.FilterSpec{Func: queryplan.CmpLE, LiteralClass: queryplan.TypeDouble, Selectivity: 0.5},
		queryplan.AggSpec{Func: queryplan.AggAvg, Class: queryplan.TypeDouble, KeyClass: queryplan.TypeInt,
			Selectivity: 0.2,
			Window:      queryplan.WindowSpec{Type: queryplan.WindowSliding, Policy: queryplan.PolicyTime, Length: 2000, Slide: 1000}},
	)
	p := queryplan.NewPQP(q)
	for id, d := range degrees {
		p.SetDegree(id, d)
	}
	c, err := cluster.New(3, cluster.SeenTypes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Place(p, c); err != nil {
		t.Fatal(err)
	}
	g, err := Encode(p, c, MaskAll)
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

func TestEncodeShapes(t *testing.T) {
	g, _ := encoded(t, map[int]int{1: 4, 2: 2})
	if len(g.OpNodes) != 4 {
		t.Fatalf("%d op nodes", len(g.OpNodes))
	}
	if len(g.DataEdges) != 3 {
		t.Fatalf("%d data edges", len(g.DataEdges))
	}
	if len(g.ResNodes) == 0 || len(g.ResNodes) > 3 {
		t.Fatalf("%d resource nodes", len(g.ResNodes))
	}
	if len(g.Mapping) == 0 {
		t.Fatal("no mapping edges")
	}
	for _, n := range g.OpNodes {
		if len(n.Feat) != OpFeatDim {
			t.Fatalf("op feature width %d, want %d", len(n.Feat), OpFeatDim)
		}
		if n.Feat.HasNaN() {
			t.Fatalf("NaN in op features: %v", n.Feat)
		}
	}
	for _, n := range g.ResNodes {
		if len(n.Feat) != ResFeatDim {
			t.Fatalf("res feature width %d, want %d", len(n.Feat), ResFeatDim)
		}
	}
	if g.OpNodes[g.SinkIdx].Type != queryplan.OpSink {
		t.Fatal("SinkIdx does not point at the sink")
	}
}

func TestEncodeDegreesAndGrouping(t *testing.T) {
	g, p := encoded(t, map[int]int{1: 8})
	var filterNode *OpNode
	for i := range g.OpNodes {
		if g.OpNodes[i].Type == queryplan.OpFilter {
			filterNode = &g.OpNodes[i]
		}
	}
	if filterNode == nil {
		t.Fatal("no filter node")
	}
	if got := filterNode.Feat[FeatDegree]; math.Abs(got-3) > 1e-9 { // log2(8)
		t.Fatalf("degree feature %v, want 3", got)
	}
	_ = p
}

func TestEncodeOneHots(t *testing.T) {
	g, _ := encoded(t, nil)
	for _, n := range g.OpNodes {
		// Exactly one op-type flag set.
		sum := n.Feat[FeatOpTypeSource] + n.Feat[FeatOpTypeFilter] + n.Feat[FeatOpTypeAgg] +
			n.Feat[FeatOpTypeJoin] + n.Feat[FeatOpTypeSink]
		if sum != 1 {
			t.Fatalf("op-type one-hot sum %v for %v", sum, n.Type)
		}
		// Exactly one partitioning flag set.
		psum := n.Feat[FeatPartForward] + n.Feat[FeatPartRebalance] + n.Feat[FeatPartHash]
		if psum != 1 {
			t.Fatalf("partitioning one-hot sum %v", psum)
		}
	}
	// Aggregate node carries window features.
	for _, n := range g.OpNodes {
		if n.Type == queryplan.OpAggregate {
			if n.Feat[FeatWinSliding] != 1 || n.Feat[FeatPolicyTime] != 1 {
				t.Fatal("window one-hots wrong on aggregate")
			}
			if n.Feat[FeatWindowLength] == 0 || n.Feat[FeatSlidingLength] == 0 {
				t.Fatal("window lengths not encoded")
			}
			if n.Feat[FeatAggAvg] != 1 || n.Feat[FeatAggKeyInt] != 1 {
				t.Fatal("aggregation one-hots wrong")
			}
		}
		if n.Type == queryplan.OpFilter {
			if n.Feat[FeatCmpLE] != 1 || n.Feat[FeatLitDouble] != 1 {
				t.Fatal("filter one-hots wrong")
			}
		}
		if n.Type == queryplan.OpSource {
			if n.Feat[FeatEventRate] == 0 {
				t.Fatal("source event rate not encoded")
			}
		}
	}
}

func TestEncodeInputRateEstimation(t *testing.T) {
	g, _ := encoded(t, nil)
	// Filter input rate should be the source rate (10k → log10(10001)≈4).
	for _, n := range g.OpNodes {
		if n.Type == queryplan.OpFilter {
			if math.Abs(n.Feat[FeatInputRate]-4) > 0.01 {
				t.Fatalf("filter input-rate feature %v, want ≈4", n.Feat[FeatInputRate])
			}
		}
		// Aggregate gets the filtered rate: 5000 → ≈3.7.
		if n.Type == queryplan.OpAggregate {
			if math.Abs(n.Feat[FeatInputRate]-math.Log10(5001)) > 0.01 {
				t.Fatalf("agg input-rate feature %v", n.Feat[FeatInputRate])
			}
		}
	}
}

func TestEncodeRequiresPlacement(t *testing.T) {
	q := queryplan.SpikeDetection(1000)
	p := queryplan.NewPQP(q)
	c, _ := cluster.New(2, cluster.SeenTypes(), 10)
	if _, err := Encode(p, c, MaskAll); err == nil {
		t.Fatal("encoded plan without placement")
	}
}

func TestEncodeRejectsUnknownNode(t *testing.T) {
	q := queryplan.SpikeDetection(1000)
	p := queryplan.NewPQP(q)
	c, _ := cluster.New(2, cluster.SeenTypes(), 10)
	if err := cluster.Place(p, c); err != nil {
		t.Fatal(err)
	}
	p.Placement[0][0] = "ghost-node"
	if _, err := Encode(p, c, MaskAll); err == nil {
		t.Fatal("accepted placement on unknown node")
	}
}

func TestMaskOperatorOnlyBlanksParallelism(t *testing.T) {
	q := queryplan.SpikeDetection(1000)
	p := queryplan.NewPQP(q)
	p.SetDegree(1, 8)
	c, _ := cluster.New(2, cluster.SeenTypes(), 10)
	if err := cluster.Place(p, c); err != nil {
		t.Fatal(err)
	}
	g, err := Encode(p, c, MaskOperatorOnly)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.OpNodes {
		for _, i := range parallelismFeatures {
			if n.Feat[i] != 0 {
				t.Fatalf("parallelism feature %d not blanked: %v", i, n.Feat[i])
			}
		}
	}
	for _, n := range g.ResNodes {
		if n.Feat.Sum() != 0 {
			t.Fatal("resource features not blanked under operator-only mask")
		}
	}
}

func TestMaskParallelismResourceBlanksOperator(t *testing.T) {
	g, _ := func() (*Graph, error) {
		q := queryplan.SpikeDetection(1000)
		p := queryplan.NewPQP(q)
		c, _ := cluster.New(2, cluster.SeenTypes(), 10)
		if err := cluster.Place(p, c); err != nil {
			return nil, err
		}
		return Encode(p, c, MaskParallelismResource)
	}()
	for _, n := range g.OpNodes {
		if n.Feat[FeatSelectivity] != 0 || n.Feat[FeatEventRate] != 0 || n.Feat[FeatWindowLength] != 0 {
			t.Fatal("operator/data features not blanked")
		}
		// Parallelism block must survive.
		psum := n.Feat[FeatPartForward] + n.Feat[FeatPartRebalance] + n.Feat[FeatPartHash]
		if psum != 1 {
			t.Fatal("parallelism features blanked by mistake")
		}
	}
}

func TestMaskStringer(t *testing.T) {
	if MaskAll.String() != "all" || MaskOperatorOnly.String() != "operator-only" ||
		MaskParallelismResource.String() != "parallelism+resource" {
		t.Fatal("mask stringer")
	}
	_ = Mask(9).String()
}

func TestEncodeDeterministic(t *testing.T) {
	a, _ := encoded(t, map[int]int{1: 4})
	b, _ := encoded(t, map[int]int{1: 4})
	if len(a.Mapping) != len(b.Mapping) {
		t.Fatal("mapping edge count differs")
	}
	for i := range a.Mapping {
		if a.Mapping[i] != b.Mapping[i] {
			t.Fatal("mapping edges not deterministic")
		}
	}
	for i := range a.OpNodes {
		for j := range a.OpNodes[i].Feat {
			if a.OpNodes[i].Feat[j] != b.OpNodes[i].Feat[j] {
				t.Fatal("features not deterministic")
			}
		}
	}
}

func TestMappingEdgesCoverAllInstances(t *testing.T) {
	g, p := encoded(t, map[int]int{1: 5, 2: 3})
	instances := make(map[int]int)
	for _, m := range g.Mapping {
		instances[g.OpNodes[m.OpIdx].OpID] += m.Instances
	}
	for _, o := range p.Query.Ops {
		if instances[o.ID] != p.Degree(o.ID) {
			t.Fatalf("op %d mapping covers %d instances, degree %d", o.ID, instances[o.ID], p.Degree(o.ID))
		}
	}
}

package features_test

import (
	"testing"
	"testing/quick"

	"zerotune/internal/cluster"
	"zerotune/internal/features"
	"zerotune/internal/optisample"
	"zerotune/internal/queryplan"
	"zerotune/internal/workload"
)

// Property tests over the full workload space: every valid plan must encode
// into a well-formed graph.

func randomItem(t *testing.T, seed uint64) (*queryplan.PQP, *cluster.Cluster) {
	t.Helper()
	gen := &workload.Generator{
		Ranges:    workload.SeenRanges(),
		Strategy:  &optisample.Random{MaxDegree: 24},
		Seed:      seed,
		NodeTypes: cluster.Catalog(),
	}
	structures := append(append([]string{}, workload.SeenRanges().Structures...),
		workload.UnseenRanges().Structures...)
	items, err := gen.Generate(structures, 1)
	if err != nil {
		t.Fatal(err)
	}
	return items[0].Plan, items[0].Cluster
}

func TestPropertyEncodeWellFormed(t *testing.T) {
	f := func(seed uint64) bool {
		p, c := randomItem(t, seed)
		g, err := features.Encode(p, c, features.MaskAll)
		if err != nil {
			return false
		}
		// One op node per operator; sink index valid; features finite and
		// correctly sized.
		if len(g.OpNodes) != len(p.Query.Ops) {
			return false
		}
		if g.SinkIdx < 0 || g.SinkIdx >= len(g.OpNodes) {
			return false
		}
		if g.OpNodes[g.SinkIdx].Type != queryplan.OpSink {
			return false
		}
		for _, n := range g.OpNodes {
			if len(n.Feat) != features.OpFeatDim || n.Feat.HasNaN() {
				return false
			}
		}
		for _, n := range g.ResNodes {
			if len(n.Feat) != features.ResFeatDim || n.Feat.HasNaN() {
				return false
			}
		}
		// Data edges reference valid nodes and match the query edge count.
		if len(g.DataEdges) != len(p.Query.Edges) {
			return false
		}
		for _, e := range g.DataEdges {
			if e[0] < 0 || e[0] >= len(g.OpNodes) || e[1] < 0 || e[1] >= len(g.OpNodes) {
				return false
			}
		}
		// Mapping edges cover every instance exactly once.
		covered := make(map[int]int)
		for _, m := range g.Mapping {
			if m.ResIdx < 0 || m.ResIdx >= len(g.ResNodes) || m.Instances < 1 {
				return false
			}
			covered[g.OpNodes[m.OpIdx].OpID] += m.Instances
		}
		for _, o := range p.Query.Ops {
			if covered[o.ID] != p.Degree(o.ID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Topological invariant: data edges always point from an earlier op node to
// a later one (OpNodes are built in topological order).
func TestPropertyEdgesTopological(t *testing.T) {
	f := func(seed uint64) bool {
		p, c := randomItem(t, seed)
		g, err := features.Encode(p, c, features.MaskAll)
		if err != nil {
			return false
		}
		for _, e := range g.DataEdges {
			if e[0] >= e[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Mask invariance: masking never changes the graph structure, only blanks
// feature values.
func TestPropertyMaskPreservesStructure(t *testing.T) {
	f := func(seed uint64) bool {
		p, c := randomItem(t, seed)
		full, err := features.Encode(p, c, features.MaskAll)
		if err != nil {
			return false
		}
		for _, mask := range []features.Mask{features.MaskOperatorOnly, features.MaskParallelismResource} {
			g, err := features.Encode(p, c, mask)
			if err != nil {
				return false
			}
			if len(g.OpNodes) != len(full.OpNodes) || len(g.ResNodes) != len(full.ResNodes) ||
				len(g.DataEdges) != len(full.DataEdges) || len(g.Mapping) != len(full.Mapping) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

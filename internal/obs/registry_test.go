package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", L("endpoint", "predict")).Add(7)
	r.Counter("reqs_total", L("endpoint", "tune")).Add(2)
	r.Gauge("queue_depth").Set(3.5)
	r.GaugeFunc("uptime_seconds", func() float64 { return 12.25 })
	r.SetInfo("model_info", L("id", `we"ird\pa`+"\n"+`th`), L("gen", "4"))
	h := r.Histogram("latency_seconds", []float64{0.001, 0.01, 0.1}, 16, L("endpoint", "predict"))
	for _, v := range []float64{0.0005, 0.004, 0.02, 0.5} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("strict parse of own output failed: %v\n%s", err, text)
	}
	if err := CheckHistograms(samples); err != nil {
		t.Fatalf("%v\n%s", err, text)
	}

	checks := []struct {
		name   string
		labels []Label
		want   float64
	}{
		{"reqs_total", []Label{L("endpoint", "predict")}, 7},
		{"reqs_total", []Label{L("endpoint", "tune")}, 2},
		{"queue_depth", nil, 3.5},
		{"uptime_seconds", nil, 12.25},
		{"model_info", []Label{L("id", `we"ird\pa`+"\n"+`th`), L("gen", "4")}, 1},
		{"latency_seconds_bucket", []Label{L("endpoint", "predict"), L("le", "0.01")}, 2},
		{"latency_seconds_bucket", []Label{L("endpoint", "predict"), L("le", "+Inf")}, 4},
		{"latency_seconds_count", []Label{L("endpoint", "predict")}, 4},
	}
	for _, c := range checks {
		got, ok := FindSample(samples, c.name, c.labels...)
		if !ok {
			t.Errorf("sample %s%v missing from output:\n%s", c.name, c.labels, text)
			continue
		}
		if got != c.want {
			t.Errorf("%s%v = %g, want %g", c.name, c.labels, got, c.want)
		}
	}
	sum, _ := FindSample(samples, "latency_seconds_sum", L("endpoint", "predict"))
	if want := 0.0005 + 0.004 + 0.02 + 0.5; sum < want-1e-12 || sum > want+1e-12 {
		t.Errorf("histogram sum = %g, want %g", sum, want)
	}
	if _, ok := FindSample(samples, "latency_seconds", L("quantile", "0.5")); !ok {
		t.Errorf("quantile series missing:\n%s", text)
	}
}

func TestInfoLineEscaping(t *testing.T) {
	// Backslashes, quotes, a newline, a tab, printable unicode and one raw
	// invalid-UTF-8 byte: %q turns the tab into \t and the raw byte into
	// \x80, neither of which the exposition format knows.
	hostile := `C:\m\"x"` + "\n\t" + "caf\u00e9\u2713" + "\x80"
	line := InfoLine("model_info", L("path", hostile), L("id", "a"))
	samples, err := ParseText(strings.NewReader(line))
	if err != nil {
		t.Fatalf("InfoLine output rejected by strict parser: %v\n%s", err, line)
	}
	if v, ok := FindSample(samples, "model_info", L("path", hostile), L("id", "a")); !ok || v != 1 {
		t.Fatalf("hostile label value did not round-trip: %q", line)
	}
	// %q rendering of the same value is NOT parseable — the bug InfoLine
	// exists to prevent: non-ASCII bytes become \xNN escapes.
	bad := "model_info{path=" + strconv.Quote(hostile) + "} 1\n"
	if _, err := ParseText(strings.NewReader(bad)); err == nil {
		t.Fatalf("expected strict parser to reject %%q-escaped line %q", bad)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name must panic")
		}
	}()
	InfoLine("bad metric name")
}

func TestHistogramWindowSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1}, 4)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i)) // 10 observed, ring holds last 4
	}
	snap := h.Snapshot()
	if snap.RingCapacity != 4 || snap.RingFilled != 4 || snap.Count != 10 {
		t.Fatalf("snapshot window = cap %d filled %d count %d, want 4/4/10",
			snap.RingCapacity, snap.RingFilled, snap.Count)
	}
	// The ring is a last-N window: with observations 0..9 and capacity 4,
	// the p50 covers {6,7,8,9}, not the whole run — which is exactly why
	// the window series must be exported alongside the quantiles.
	if q := snap.Quantiles[0.5]; q < 6 {
		t.Fatalf("ring p50 = %g, expected it to reflect only recent samples (>= 6)", q)
	}
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	text := b.String()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckHistograms(samples); err != nil {
		t.Fatal(err)
	}
	if v, ok := FindSample(samples, "lat_seconds_window_capacity"); !ok || v != 4 {
		t.Fatalf("window_capacity = %g (ok=%v), want 4:\n%s", v, ok, text)
	}
	if v, ok := FindSample(samples, "lat_seconds_window_filled"); !ok || v != 4 {
		t.Fatalf("window_filled = %g (ok=%v), want 4:\n%s", v, ok, text)
	}
	if !strings.Contains(text, "# HELP lat_seconds ") || !strings.Contains(text, "sliding window") {
		t.Fatalf("histogram HELP must document the quantile window:\n%s", text)
	}
}

func TestRegistryDeterministicOutput(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("b_total", L("x", "2")).Inc()
		r.Counter("b_total", L("x", "1")).Inc()
		r.Gauge("a_gauge").Set(1)
		var b strings.Builder
		_ = r.WritePrometheus(&b)
		return b.String()
	}
	if build() != build() {
		t.Fatal("output is not deterministic")
	}
	out := build()
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
	if strings.Index(out, `x="1"`) > strings.Index(out, `x="2"`) {
		t.Errorf("series not sorted by label set:\n%s", out)
	}
}

func TestRegistryIdempotentAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hits_total")
	c1.Add(5)
	if c2 := r.Counter("hits_total"); c2 != c1 || c2.Load() != 5 {
		t.Fatal("re-registering must return the same instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("hits_total")
}

func TestRegistryInfoReplacement(t *testing.T) {
	r := NewRegistry()
	r.SetInfo("model_info", L("id", "a"), L("gen", "1"))
	r.SetInfo("model_info", L("id", "b"), L("gen", "2"))
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	samples, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := FindSample(samples, "model_info", L("id", "a")); ok {
		t.Error("stale info series survived replacement")
	}
	if _, ok := FindSample(samples, "model_info", L("id", "b"), L("gen", "2")); !ok {
		t.Error("current info series missing")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c_total", L("g", string(rune('a'+g%4)))).Inc()
				r.Histogram("h", []float64{1, 10}, 8).Observe(float64(i))
				var b strings.Builder
				_ = r.WritePrometheus(&b)
			}
		}(g)
	}
	wg.Wait()
	total := uint64(0)
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.Counter("c_total", L("g", l)).Load()
	}
	if total != 1600 {
		t.Fatalf("counter total = %d, want 1600", total)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	bad := []string{
		`1name 3`,
		`name{le="0.1" 3`,
		`name{le=0.1} 3`,
		`name{le="a",le="b"} 3`,
		`name{le="x\q"} 3`,
		`name 3 extra`,
		`name notanumber`,
		`name{} `,
	}
	for _, line := range bad {
		if _, err := ParseText(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ParseText accepted malformed line %q", line)
		}
	}
}

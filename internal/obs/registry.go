package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"zerotune/internal/metrics"
)

// Label is one metric dimension (key="value" in the exposition format).
type Label struct{ Key, Value string }

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. Usable standalone;
// Registry.Counter additionally names and exports it.
type Counter struct{ v atomic.Uint64 }

// NewCounter returns an unregistered counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// NewGauge returns an unregistered gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind distinguishes the instrument behind a series.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindInfo
)

func (k metricKind) String() string {
	return [...]string{"counter", "gauge", "gauge-func", "histogram", "info"}[k]
}

// series is one (name, labelset) time series.
type series struct {
	labels  string // canonical rendered labels: `k1="v1",k2="v2"`, keys sorted
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups every series of one metric name.
type family struct {
	name   string
	kind   metricKind
	series map[string]*series
	keys   []string // sorted lazily at render time
}

// Registry names metric instruments and renders them in the Prometheus
// text exposition format. Registration is idempotent: asking for the same
// name+labels returns the existing instrument; asking for the same name
// with a different instrument kind panics (a programming error, caught in
// tests, never at scrape time).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// renderLabels canonicalizes a label set: keys sorted, values escaped.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if !labelRE.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// InfoLine renders one constant-1 info sample (`name{labels} 1`) with the
// exposition-format label escaping this registry uses everywhere else. It
// exists for scrape-time identity lines rendered outside a registry (the
// serve tier's model_info): hand-formatting those with Go's %q produces
// \xNN escapes the strict parser — and real Prometheus — reject, so every
// ad-hoc sample must go through this instead. Panics on an invalid metric
// or label name, like instrument registration.
func InfoLine(name string, labels ...Label) string {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	var b strings.Builder
	writeSample(&b, name, renderLabels(labels), "", 1, true)
	return b.String()
}

// lookup finds or creates the series for (name, labels), enforcing kind
// consistency across the family. fill initializes a freshly created series
// under the registry lock, so a renderer can never observe a series whose
// instrument is still nil.
func (r *Registry) lookup(name string, kind metricKind, labels []Label, fill func(*series)) *series {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		fill(s)
		f.series[key] = s
		f.keys = nil // invalidate the sorted-key cache
	}
	return s
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := r.lookup(name, kindCounter, labels, func(s *series) { s.counter = NewCounter() })
	return s.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := r.lookup(name, kindGauge, labels, func(s *series) { s.gauge = NewGauge() })
	return s.gauge
}

// GaugeFunc exports a value computed at scrape time (uptime, a size read
// from another subsystem). Re-registering replaces the function. fn is
// called during rendering with the registry lock held, so it must not call
// back into the registry.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	s := r.lookup(name, kindGaugeFunc, labels, func(s *series) {})
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram over the given ascending upper
// bucket bounds, creating it on first use (ringSize bounds the quantile
// ring; see NewHistogram). Bounds are fixed at first registration.
func (r *Registry) Histogram(name string, bounds []float64, ringSize int, labels ...Label) *Histogram {
	s := r.lookup(name, kindHistogram, labels, func(s *series) { s.hist = NewHistogram(bounds, ringSize) })
	return s.hist
}

// SetInfo publishes a constant-1 info metric whose labels carry identity
// (model ID, build revision). Unlike other instruments the label set is
// replaceable: publishing again drops the previous series, so a hot model
// swap replaces — not accumulates — the identity series.
func (r *Registry) SetInfo(name string, labels ...Label) {
	s := r.lookup(name, kindInfo, labels, func(s *series) {})
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	for k := range f.series {
		if k != s.labels {
			delete(f.series, k)
		}
	}
	f.keys = nil
}

// quantilePoints are the summary quantiles exported for histograms.
var quantilePoints = []float64{0.5, 0.9, 0.99}

// WritePrometheus renders every registered series in the text exposition
// format, families sorted by name and series sorted by label set, so the
// output is deterministic. Rendering happens into a buffer under the
// registry lock; only the final write touches w, so a slow scraper never
// blocks instrument registration.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.fams[name]
		if f.kind == kindHistogram {
			// The quantile series come from a bounded ring of recent
			// observations, not the whole run — say so where every scraper
			// can see it, and point at the series that quantify the window.
			fmt.Fprintf(&b, "# HELP %s buckets/sum/count cover the whole run; quantile series are computed "+
				"over a sliding window of the most recent observations "+
				"(see %s_window_capacity and %s_window_filled)\n", name, name, name)
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		}
		if f.keys == nil {
			for k := range f.series {
				f.keys = append(f.keys, k)
			}
			sort.Strings(f.keys)
		}
		for _, k := range f.keys {
			s := f.series[k]
			switch f.kind {
			case kindCounter:
				writeSample(&b, name, s.labels, "", float64(s.counter.Load()), true)
			case kindGauge:
				writeSample(&b, name, s.labels, "", s.gauge.Load(), false)
			case kindGaugeFunc:
				writeSample(&b, name, s.labels, "", s.fn(), false)
			case kindInfo:
				writeSample(&b, name, s.labels, "", 1, true)
			case kindHistogram:
				writeHistogram(&b, name, s.labels, s.hist.Snapshot())
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample renders one `name{labels,extra} value` line.
func writeSample(w *strings.Builder, name, labels, extra string, v float64, integer bool) {
	w.WriteString(name)
	if labels != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		if labels != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	if integer {
		fmt.Fprintf(w, " %d\n", uint64(v))
	} else {
		fmt.Fprintf(w, " %g\n", v)
	}
}

// writeHistogram renders cumulative buckets, sum, count and the ring
// quantiles for one histogram series.
func writeHistogram(w *strings.Builder, name, labels string, s HistogramSnapshot) {
	cum := uint64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		writeSample(w, name+"_bucket", labels, fmt.Sprintf("le=%q", fmt.Sprintf("%g", b)), float64(cum), true)
	}
	writeSample(w, name+"_bucket", labels, `le="+Inf"`, float64(s.Count), true)
	writeSample(w, name+"_sum", labels, "", s.Sum, false)
	writeSample(w, name+"_count", labels, "", float64(s.Count), true)
	for _, q := range quantilePoints {
		if v, ok := s.Quantiles[q]; ok {
			writeSample(w, name, labels, fmt.Sprintf("quantile=%q", fmt.Sprintf("%g", q)), v, false)
		}
	}
	// The window series make the quantile ring's reach machine-readable:
	// when _count exceeds _window_filled, the quantiles above reflect only
	// the most recent _window_capacity observations, not the whole run.
	writeSample(w, name+"_window_capacity", labels, "", float64(s.RingCapacity), true)
	writeSample(w, name+"_window_filled", labels, "", float64(s.RingFilled), true)
}

// Histogram is a concurrency-safe fixed-bucket histogram that additionally
// keeps a ring of recent observations for quantile summaries (quantiles
// from buckets alone would be bound-quantized). Bounds are upper bucket
// edges; observations above the last bound land in the implicit +Inf
// bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1, last is +Inf
	count  uint64
	sum    float64
	min    float64
	max    float64

	ring []float64
	pos  int
}

// NewHistogram builds a histogram over the given ascending upper bounds,
// remembering the last ringSize observations for quantiles (default 1024).
func NewHistogram(bounds []float64, ringSize int) *Histogram {
	if ringSize < 1 {
		ringSize = 1024
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
		ring:   make([]float64, 0, ringSize),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	h.min = math.Min(h.min, v)
	h.max = math.Max(h.max, v)
	if len(h.ring) < cap(h.ring) {
		h.ring = append(h.ring, v)
	} else {
		h.ring[h.pos] = v
		h.pos = (h.pos + 1) % cap(h.ring)
	}
}

// HistogramSnapshot is a point-in-time copy for rendering.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
	// Quantiles over the recent-observation ring; nil when no data yet
	// (TryQuantile keeps the empty case panic-free). The ring is a last-N
	// window: once Count exceeds RingFilled these are *recent* quantiles,
	// not whole-run quantiles — whole-run summaries must be computed from
	// full per-observation records (as the bench harness does).
	Quantiles map[float64]float64
	// RingCapacity is the quantile window's bound; RingFilled is how many
	// observations it currently holds (== min(Count, RingCapacity)).
	RingCapacity int
	RingFilled   int
}

// Snapshot copies the histogram state and computes ring quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	ring := append([]float64(nil), h.ring...)
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count, Sum: h.sum, Min: h.min, Max: h.max,
		RingCapacity: cap(h.ring), RingFilled: len(h.ring),
	}
	h.mu.Unlock()
	for _, q := range quantilePoints {
		if v, ok := metrics.TryQuantile(ring, q); ok {
			if s.Quantiles == nil {
				s.Quantiles = make(map[float64]float64, len(quantilePoints))
			}
			s.Quantiles[q] = v
		}
	}
	return s
}

// Package obs is the unified observability layer of the system: a central
// metrics registry (counters, gauges, histograms, all label-aware), a
// lightweight tracer (spans with parent/child links, propagated through
// context.Context), and exporters for both — Prometheus text format for
// metrics, a bounded in-memory ring of completed traces dumped as JSON,
// and net/http/pprof wiring. Everything is stdlib-only and safe for
// concurrent use.
//
// Two rules shape the design:
//
//  1. Disabled means (nearly) free. Tracing is opt-in per context: without
//     a Tracer installed via WithTracer, StartSpan returns a nil *Span
//     whose methods are no-ops, so an instrumented hot path costs one
//     context lookup and zero allocations. The serving benchmark must not
//     regress when observability is off.
//  2. Instruments are plain structs. A Counter is an atomic integer whether
//     or not it is registered; the Registry only names instruments and
//     renders them, so packages can keep private counters and expose them
//     later without changing their hot paths.
package obs

import (
	"context"
	"time"
)

// ctxKey keys the context values this package installs.
type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context that starts spans on t. Handlers install it
// once at the request boundary; everything below inherits it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer installed in ctx, or nil when tracing is
// disabled for this context.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// SpanFrom returns the innermost open span in ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// TraceID returns the trace ID carried by ctx, or "" when the context is
// not being traced. The serving layer reflects it back to clients in a
// response header so a slow request can be matched to its trace dump.
func TraceID(ctx context.Context) string {
	if s := SpanFrom(ctx); s != nil {
		return s.TraceID
	}
	return ""
}

// StartSpan opens a span named name. When ctx carries a tracer, the span
// becomes a child of the innermost open span (or the root of a new trace)
// and the returned context carries it as the parent for further StartSpan
// calls. Without a tracer both returns degrade gracefully: the original
// context and a nil span whose methods are no-ops.
//
// Callers must End the span exactly once:
//
//	ctx, span := obs.StartSpan(ctx, "cache.lookup")
//	defer span.End()
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	sp := t.start(name, SpanFrom(ctx))
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// StartTrace opens a new root span named name on tracer t and returns a
// context carrying both the tracer and the span — the entry point for
// non-HTTP roots like a training run or a CLI invocation.
func StartTrace(ctx context.Context, t *Tracer, name string) (context.Context, *Span) {
	return StartSpan(WithTracer(ctx, t), name)
}

// now is stubbed in tests that need deterministic span timing.
var now = time.Now

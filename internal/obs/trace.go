package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation inside a trace. Fields are immutable after
// creation except the attributes (guarded by mu) and the end time (written
// once by End). All methods are safe on a nil receiver, which is what
// StartSpan returns when tracing is disabled.
type Span struct {
	TraceID  string
	SpanID   string
	ParentID string // empty for the root span
	Name     string

	tracer *Tracer
	root   bool
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// SetAttr attaches a key/value attribute to the span (loss, batch size,
// cache verdict, ...). Values must be JSON-encodable.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.attrs == nil {
			s.attrs = make(map[string]any, 4)
		}
		s.attrs[key] = value
	}
	s.mu.Unlock()
}

// End closes the span and records it on its trace. Ending the root span
// finalizes the whole trace into the tracer's completed ring. A second End
// is a no-op; an End after the trace was already finalized or evicted
// counts as an orphan (see Tracer.Stats).
func (s *Span) End() {
	if s == nil {
		return
	}
	end := now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tracer.finish(s, end, attrs)
}

// SpanData is the exported (JSON) form of a completed span.
type SpanData struct {
	SpanID   string         `json:"span_id"`
	ParentID string         `json:"parent_id,omitempty"`
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	Duration time.Duration  `json:"duration_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// TraceData is one completed trace: every span that ended before (or at)
// the moment the root span ended, in end order.
type TraceData struct {
	TraceID  string        `json:"trace_id"`
	Root     string        `json:"root"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Spans    []SpanData    `json:"spans"`
}

// activeTrace accumulates spans until its root ends.
type activeTrace struct {
	id      string
	started time.Time
	spans   []SpanData
}

// Tracer creates spans and keeps a bounded ring of completed traces. The
// zero value is not usable; construct with NewTracer.
type Tracer struct {
	mu     sync.Mutex
	active map[string]*activeTrace
	order  []string // active trace IDs in start order, for orphan eviction

	ring []TraceData // completed traces, ring[pos] is the next write slot
	pos  int
	n    int // number of valid entries in ring

	maxActive int
	idc       atomic.Uint64
	completed atomic.Uint64
	dropped   atomic.Uint64
}

// DefaultRingSize bounds the completed-trace ring when NewTracer is given
// a non-positive size.
const DefaultRingSize = 256

// defaultMaxActive bounds in-flight traces; beyond it the oldest active
// trace is evicted as an orphan so abandoned roots cannot leak memory.
const defaultMaxActive = 1024

// NewTracer builds a tracer whose completed-trace ring holds ringSize
// traces (DefaultRingSize when <= 0).
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Tracer{
		active:    make(map[string]*activeTrace),
		ring:      make([]TraceData, ringSize),
		maxActive: defaultMaxActive,
	}
}

// newID returns a process-unique hex ID. A counter (not randomness) keeps
// IDs deterministic per process, which tests and diffing both appreciate.
func (t *Tracer) newID() string {
	return fmt.Sprintf("%012x", t.idc.Add(1))
}

// start opens a span under parent (nil parent starts a new trace).
func (t *Tracer) start(name string, parent *Span) *Span {
	sp := &Span{Name: name, tracer: t, start: now(), SpanID: t.newID()}
	if parent != nil {
		sp.TraceID = parent.TraceID
		sp.ParentID = parent.SpanID
		return sp
	}
	sp.root = true
	sp.TraceID = "t" + t.newID()
	t.mu.Lock()
	t.active[sp.TraceID] = &activeTrace{id: sp.TraceID, started: sp.start}
	t.order = append(t.order, sp.TraceID)
	t.evictLocked()
	t.mu.Unlock()
	return sp
}

// evictLocked drops the oldest active traces beyond maxActive. Their spans
// are lost and counted as dropped — an abandoned root span (never ended)
// must not pin memory forever.
func (t *Tracer) evictLocked() {
	for len(t.active) > t.maxActive {
		// order may contain IDs already finalized; skip those.
		id := t.order[0]
		t.order = t.order[1:]
		if _, ok := t.active[id]; ok {
			delete(t.active, id)
			t.dropped.Add(1)
		}
	}
}

// finish records an ended span, finalizing the trace when the root ends.
func (t *Tracer) finish(s *Span, end time.Time, attrs map[string]any) {
	d := end.Sub(s.start)
	if d <= 0 {
		d = 1 // clock granularity: a measured span never reports zero
	}
	data := SpanData{
		SpanID: s.SpanID, ParentID: s.ParentID, Name: s.Name,
		Start: s.start, Duration: d, Attrs: attrs,
	}
	t.mu.Lock()
	tr, ok := t.active[s.TraceID]
	if !ok {
		t.mu.Unlock()
		// Trace already finalized (child outlived its root) or evicted.
		t.dropped.Add(1)
		return
	}
	tr.spans = append(tr.spans, data)
	if !s.root {
		t.mu.Unlock()
		return
	}
	delete(t.active, s.TraceID)
	t.ring[t.pos] = TraceData{
		TraceID: s.TraceID, Root: s.Name, Start: s.start, Duration: d, Spans: tr.spans,
	}
	t.pos = (t.pos + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
	t.completed.Add(1)
}

// Traces snapshots the completed-trace ring, newest first.
func (t *Tracer) Traces() []TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceData, 0, t.n)
	for i := 1; i <= t.n; i++ {
		out = append(out, t.ring[(t.pos-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Stats reports lifetime counters: completed is the number of finalized
// traces (including ones since evicted from the ring); dropped counts
// orphan spans (ended after their trace finalized) and evicted
// never-finalized traces.
func (t *Tracer) Stats() (completed, dropped uint64) {
	return t.completed.Load(), t.dropped.Load()
}

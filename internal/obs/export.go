package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves r in Prometheus text exposition format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// TracesHandler serves the tracer's completed-trace ring as a JSON array,
// newest trace first.
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		traces := t.Traces()
		if traces == nil {
			traces = []TraceData{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(traces)
	})
}

// RegisterDebug mounts the debug surface on mux: the trace dump under
// /debug/traces and the net/http/pprof handlers under /debug/pprof/. It is
// called only when the operator opts in (serve -debug); the default mux is
// never touched, so importing this package does not expose pprof.
func RegisterDebug(mux *http.ServeMux, t *Tracer) {
	mux.Handle("GET /debug/traces", TracesHandler(t))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition-format line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText is a strict parser for the Prometheus text exposition format
// (the subset WritePrometheus emits: sample lines and # comments, no
// timestamps). It rejects malformed metric names, unterminated or
// badly-escaped label values, duplicate label keys, trailing garbage and
// unparsable values — the round-trip test that keeps /metrics honest.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %w", lineno, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool { return isNameStart(c) || (c >= '0' && c <= '9') }

func parseLine(line string) (Sample, error) {
	i := 0
	for i < len(line) && isNameChar(line[i]) {
		if i == 0 && !isNameStart(line[i]) {
			break
		}
		i++
	}
	if i == 0 {
		return Sample{}, fmt.Errorf("invalid metric name in %q", line)
	}
	s := Sample{Name: line[:i], Labels: map[string]string{}}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return Sample{}, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end:]
	}
	if !strings.HasPrefix(rest, " ") {
		return Sample{}, fmt.Errorf("missing value separator in %q", line)
	}
	valStr := strings.TrimSpace(rest)
	if valStr == "" || strings.ContainsAny(valStr, " \t") {
		return Sample{}, fmt.Errorf("trailing garbage after value in %q", line)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return Sample{}, fmt.Errorf("bad value %q in %q", valStr, line)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block starting at s[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(s string, into map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && isNameChar(s[i]) {
			i++
		}
		key := s[start:i]
		if key == "" || !isNameStart(key[0]) || strings.Contains(key, ":") {
			return 0, fmt.Errorf("invalid label name %q", key)
		}
		if i+1 >= len(s) || s[i] != '=' || s[i+1] != '"' {
			return 0, fmt.Errorf("label %q missing quoted value", key)
		}
		i += 2
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated value for label %q", key)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c in label %q", s[i+1], key)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := into[key]; dup {
			return 0, fmt.Errorf("duplicate label %q", key)
		}
		into[key] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		} else if i < len(s) && s[i] != '}' {
			return 0, fmt.Errorf("expected ',' or '}' after label %q", key)
		}
	}
}

// FindSample returns the value of the first sample matching name and every
// given label (extra labels on the sample are allowed).
func FindSample(samples []Sample, name string, labels ...Label) (float64, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for _, l := range labels {
			if s.Labels[l.Key] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// CheckHistograms validates every histogram family in samples: `le` bounds
// must parse, appear in ascending order and carry non-decreasing cumulative
// counts, and the +Inf bucket must equal the family's _count series.
func CheckHistograms(samples []Sample) error {
	type bucket struct {
		le  float64
		val float64
	}
	groups := map[string][]bucket{}
	counts := map[string]float64{}
	for _, s := range samples {
		if strings.HasSuffix(s.Name, "_bucket") {
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("obs: %s sample without le label", s.Name)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("obs: %s has unparsable le=%q", s.Name, le)
				}
				bound = v
			}
			groups[histKey(s, true)] = append(groups[histKey(s, true)], bucket{bound, s.Value})
		}
		if strings.HasSuffix(s.Name, "_count") {
			counts[strings.TrimSuffix(s.Name, "_count")+"|"+labelKey(s.Labels, "")] = s.Value
		}
	}
	for key, bs := range groups {
		for i := 1; i < len(bs); i++ {
			if bs[i].le <= bs[i-1].le {
				return fmt.Errorf("obs: histogram %s: le bounds not ascending (%g after %g)", key, bs[i].le, bs[i-1].le)
			}
			if bs[i].val < bs[i-1].val {
				return fmt.Errorf("obs: histogram %s: cumulative counts decrease at le=%g", key, bs[i].le)
			}
		}
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("obs: histogram %s: missing +Inf bucket", key)
		}
		if c, ok := counts[key]; !ok || c != last.val {
			return fmt.Errorf("obs: histogram %s: +Inf bucket %g != count %g", key, last.val, c)
		}
	}
	return nil
}

// histKey identifies one histogram series: base name + labels minus le.
func histKey(s Sample, bucket bool) string {
	name := s.Name
	if bucket {
		name = strings.TrimSuffix(name, "_bucket")
	}
	return name + "|" + labelKey(s.Labels, "le")
}

// labelKey canonicalizes a label map, skipping one key.
func labelKey(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

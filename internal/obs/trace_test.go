package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := StartTrace(context.Background(), tr, "root")
	if root == nil || !root.root {
		t.Fatal("StartTrace must return a root span")
	}
	if got := TraceID(ctx); got != root.TraceID {
		t.Fatalf("TraceID(ctx) = %q, want %q", got, root.TraceID)
	}
	cctx, child := StartSpan(ctx, "child")
	if child.ParentID != root.SpanID || child.TraceID != root.TraceID {
		t.Fatalf("child parent/trace = %q/%q, want %q/%q",
			child.ParentID, child.TraceID, root.SpanID, root.TraceID)
	}
	_, grand := StartSpan(cctx, "grandchild")
	if grand.ParentID != child.SpanID {
		t.Fatalf("grandchild parent = %q, want %q", grand.ParentID, child.SpanID)
	}
	grand.SetAttr("k", 42)
	grand.End()
	child.End()
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Root != "root" || len(got.Spans) != 3 {
		t.Fatalf("trace root=%q spans=%d, want root/3", got.Root, len(got.Spans))
	}
	for _, sp := range got.Spans {
		if sp.Duration <= 0 {
			t.Errorf("span %s has non-positive duration %d", sp.Name, sp.Duration)
		}
	}
	if got.Spans[0].Name != "grandchild" || got.Spans[0].Attrs["k"] != 42 {
		t.Errorf("first-ended span = %+v, want grandchild with k=42", got.Spans[0])
	}
	if c, d := tr.Stats(); c != 1 || d != 0 {
		t.Errorf("stats = (%d completed, %d dropped), want (1, 0)", c, d)
	}
}

func TestSpanDisabledNoTracer(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "anything")
	if sp != nil {
		t.Fatal("StartSpan without tracer must return nil span")
	}
	// All nil-span methods must be safe.
	sp.SetAttr("k", "v")
	sp.End()
	sp.End()
	if id := TraceID(ctx); id != "" {
		t.Fatalf("TraceID without tracer = %q, want empty", id)
	}
}

func TestSpanDoubleEndAndOrphan(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := StartTrace(context.Background(), tr, "root")
	_, child := StartSpan(ctx, "late-child")
	root.End()
	root.End()  // double End: no-op, not a second trace
	child.End() // ends after its trace finalized: orphan
	if c, d := tr.Stats(); c != 1 || d != 1 {
		t.Fatalf("stats = (%d, %d), want (1 completed, 1 dropped)", c, d)
	}
	traces := tr.Traces()
	if len(traces) != 1 || len(traces[0].Spans) != 1 {
		t.Fatalf("ring should hold 1 trace with only the root span, got %+v", traces)
	}
}

func TestTraceRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		_, sp := StartTrace(context.Background(), tr, fmt.Sprintf("t%d", i))
		sp.End()
	}
	traces := tr.Traces()
	if len(traces) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(traces))
	}
	// Newest first: t4, t3, t2.
	for i, want := range []string{"t4", "t3", "t2"} {
		if traces[i].Root != want {
			t.Errorf("traces[%d].Root = %q, want %q", i, traces[i].Root, want)
		}
	}
	if c, _ := tr.Stats(); c != 5 {
		t.Errorf("completed = %d, want 5 (eviction must not uncount)", c)
	}
}

func TestActiveTraceEviction(t *testing.T) {
	tr := NewTracer(4)
	tr.maxActive = 2
	_, a := StartTrace(context.Background(), tr, "a")
	_, _ = StartTrace(context.Background(), tr, "b")
	_, c := StartTrace(context.Background(), tr, "c") // evicts a
	a.End()                                           // trace already evicted: orphan
	c.End()
	if completed, dropped := tr.Stats(); completed != 1 || dropped != 2 {
		t.Fatalf("stats = (%d, %d), want (1 completed, 2 dropped: evicted trace + orphan root)",
			completed, dropped)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := StartTrace(context.Background(), tr, "work")
				_, child := StartSpan(ctx, "inner")
				child.SetAttr("i", i)
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	if c, d := tr.Stats(); c != 400 || d != 0 {
		t.Fatalf("stats = (%d, %d), want (400, 0)", c, d)
	}
	for _, trc := range tr.Traces() {
		if len(trc.Spans) != 2 {
			t.Fatalf("trace %s has %d spans, want 2", trc.TraceID, len(trc.Spans))
		}
	}
}

func TestTracesHandlerJSON(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := StartTrace(context.Background(), tr, "req")
	_, child := StartSpan(ctx, "step")
	child.End()
	root.End()

	rec := httptest.NewRecorder()
	TracesHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var got []TraceData
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("traces endpoint is not valid JSON: %v", err)
	}
	if len(got) != 1 || got[0].Root != "req" || len(got[0].Spans) != 2 {
		t.Fatalf("decoded %+v, want one 2-span trace rooted at req", got)
	}
	if got[0].Spans[0].ParentID != got[0].Spans[1].SpanID {
		t.Errorf("parent link lost in JSON round-trip")
	}

	empty := httptest.NewRecorder()
	TracesHandler(NewTracer(4)).ServeHTTP(empty, httptest.NewRequest("GET", "/debug/traces", nil))
	if body := empty.Body.String(); body[0] != '[' {
		t.Errorf("empty tracer must serve a JSON array, got %q", body)
	}
}

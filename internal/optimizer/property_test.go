package optimizer

import (
	"context"
	"math"
	"testing"

	"zerotune/internal/cluster"
	"zerotune/internal/queryplan"
	"zerotune/internal/workload"
)

// synthEstimate is a deterministic closed-form cost surface over degree
// vectors: latency is U-shaped in parallelism (coordination overhead past
// the sweet spot), throughput grows with diminishing returns. A pure
// function of the plan, so property sweeps never depend on simulator or
// model state.
func synthEstimate(p *queryplan.PQP) Estimate {
	lat, tpt := 1.0, 0.0
	for _, o := range p.Query.Ops {
		d := float64(p.Degree(o.ID))
		lat += 10/d + 0.7*d
		tpt += 1000 * math.Sqrt(d)
	}
	return Estimate{LatencyMs: lat, ThroughputEPS: tpt}
}

func synthEstimator(_ context.Context, p *queryplan.PQP, _ *cluster.Cluster) (Estimate, error) {
	return synthEstimate(p), nil
}

// TestTuneNeverViolatesBoundsProperty sweeps Tune across a seeded table of
// generated queries (every seen structure, several samples each) and asserts
// the structural invariants that must hold for ANY input: every recommended
// degree stays within [1, cluster cores], the Eq. 1 cost lands in [0, 1],
// and the winning estimate is finite.
func TestTuneNeverViolatesBoundsProperty(t *testing.T) {
	gen := workload.NewSeenGenerator(7)
	for _, structure := range workload.SeenRanges().Structures {
		for seq := uint64(0); seq < 4; seq++ {
			q, c, err := gen.SampleQuery(structure, seq)
			if err != nil {
				t.Fatalf("%s/%d: %v", structure, seq, err)
			}
			opts := TuneOptions{Weight: float64(seq) / 3, RandomCandidates: 8, Seed: seq + 1}
			res, err := Tune(context.Background(), q, c, EstimatorFunc(synthEstimator), opts)
			if err != nil {
				t.Fatalf("%s/%d: %v", structure, seq, err)
			}
			for _, o := range q.Ops {
				d := res.Plan.Degree(o.ID)
				if d < 1 || d > c.TotalCores() {
					t.Fatalf("%s/%d: operator %d degree %d outside [1, %d]",
						structure, seq, o.ID, d, c.TotalCores())
				}
			}
			if res.Cost < 0 || res.Cost > 1 || math.IsNaN(res.Cost) {
				t.Fatalf("%s/%d: weighted cost %v outside [0,1]", structure, seq, res.Cost)
			}
			for name, v := range map[string]float64{
				"latency": res.Estimate.LatencyMs, "throughput": res.Estimate.ThroughputEPS} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s/%d: %s estimate %v", structure, seq, name, v)
				}
			}
		}
	}
}

// TestTuneBudgetMonotoneProperty: growing the random-candidate budget with a
// fixed seed only ever ADDS candidates (the RNG draw sequence is a prefix of
// the larger sweep), so at the weight extremes the winner can only improve —
// best latency non-increasing at wt=1, best throughput non-decreasing at
// wt=0. (At interior weights Eq. 1's min-max normalization is candidate-set-
// relative, so no such ordering is promised.)
func TestTuneBudgetMonotoneProperty(t *testing.T) {
	q := linear(120_000)
	c := testCluster(t)
	budgets := []int{0, 4, 8, 16, 32}

	prevLat := math.Inf(1)
	prevCount := 0
	for _, budget := range budgets {
		res, err := Tune(context.Background(), q, c, EstimatorFunc(synthEstimator),
			TuneOptions{Weight: 1, RandomCandidates: budget, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Candidates < prevCount {
			t.Fatalf("budget %d enumerated %d candidates, fewer than the smaller sweep's %d",
				budget, res.Candidates, prevCount)
		}
		prevCount = res.Candidates
		if res.Estimate.LatencyMs > prevLat {
			t.Fatalf("wt=1: best latency worsened %.4f -> %.4f when budget grew to %d",
				prevLat, res.Estimate.LatencyMs, budget)
		}
		prevLat = res.Estimate.LatencyMs
	}

	prevTpt := math.Inf(-1)
	for _, budget := range budgets {
		res, err := Tune(context.Background(), q, c, EstimatorFunc(synthEstimator),
			TuneOptions{Weight: 0, RandomCandidates: budget, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Estimate.ThroughputEPS < prevTpt {
			t.Fatalf("wt=0: best throughput worsened %.1f -> %.1f when budget grew to %d",
				prevTpt, res.Estimate.ThroughputEPS, budget)
		}
		prevTpt = res.Estimate.ThroughputEPS
	}
}

// TestBaselinesAgreeOnHealthyPlansProperty: on a topology whose runtime
// reports every operator healthy (utilization strictly between the scale-
// down and scale-up thresholds) and whose throughput is insensitive to
// re-configuration, both online baselines must refuse to act: Dhalion
// converges in zero reconfigurations and Greedy performs no splits, so the
// two agree on the all-1 degree vector and on the (identical) estimate.
func TestBaselinesAgreeOnHealthyPlansProperty(t *testing.T) {
	gen := workload.NewSeenGenerator(11)
	healthy := Estimate{LatencyMs: 42, ThroughputEPS: 9_000}
	observe := func(p *queryplan.PQP, c *cluster.Cluster) (Estimate, error) {
		return healthy, nil
	}
	runtimeObserve := func(p *queryplan.PQP, c *cluster.Cluster) (Estimate, map[int]Diagnosis, error) {
		diag := make(map[int]Diagnosis, len(p.Query.Ops))
		for _, o := range p.Query.Ops {
			diag[o.ID] = Diagnosis{Utilization: 0.5}
		}
		return healthy, diag, nil
	}

	for seq := uint64(0); seq < 5; seq++ {
		q, c, err := gen.SampleQuery("linear", seq)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Greedy(q, c, observe, 20, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Dhalion(q, c, runtimeObserve, DefaultDhalionOptions())
		if err != nil {
			t.Fatal(err)
		}
		if d.Rounds != 0 {
			t.Fatalf("seq %d: dhalion reconfigured a healthy topology %d times", seq, d.Rounds)
		}
		gv, dv := g.Plan.DegreesVector(), d.Plan.DegreesVector()
		if len(gv) != len(dv) {
			t.Fatalf("seq %d: degree vectors differ in length: %v vs %v", seq, gv, dv)
		}
		for i := range gv {
			if gv[i] != dv[i] || gv[i] != 1 {
				t.Fatalf("seq %d: baselines disagree or scaled a healthy plan: greedy %v, dhalion %v",
					seq, gv, dv)
			}
		}
		if g.Estimate != d.Estimate {
			t.Fatalf("seq %d: estimates diverged on the same plan: %+v vs %+v", seq, g.Estimate, d.Estimate)
		}
	}
}

package optimizer

import (
	"context"
	"math"
	"testing"

	"zerotune/internal/cluster"
	"zerotune/internal/queryplan"
	"zerotune/internal/simulator"
)

func linear(rate float64) *queryplan.Query {
	return queryplan.Linear(
		queryplan.SourceSpec{EventRate: rate, TupleWidth: 3, DataType: queryplan.TypeDouble},
		queryplan.FilterSpec{Func: queryplan.CmpLE, LiteralClass: queryplan.TypeDouble, Selectivity: 0.5},
		queryplan.AggSpec{Func: queryplan.AggAvg, Class: queryplan.TypeDouble, KeyClass: queryplan.TypeInt,
			Selectivity: 0.2, Window: queryplan.WindowSpec{Type: queryplan.WindowTumbling, Policy: queryplan.PolicyCount, Length: 50}},
	)
}

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(4, cluster.SeenTypes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// oracle estimates with the simulator itself — a perfect cost model, useful
// to test the optimizer machinery in isolation.
func oracle(_ context.Context, p *queryplan.PQP, c *cluster.Cluster) (Estimate, error) {
	res, err := simulator.Simulate(p, c, simulator.Options{DisableNoise: true})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{LatencyMs: res.LatencyMs, ThroughputEPS: res.ThroughputEPS}, nil
}

// observeOracle adapts oracle to the ctx-less Observe shape Greedy takes
// (an observation is a real deployment, not a cancellable estimate).
func observeOracle(p *queryplan.PQP, c *cluster.Cluster) (Estimate, error) {
	return oracle(context.Background(), p, c)
}

func runtimeObserve(p *queryplan.PQP, c *cluster.Cluster) (Estimate, map[int]Diagnosis, error) {
	res, err := simulator.Simulate(p, c, simulator.Options{DisableNoise: true})
	if err != nil {
		return Estimate{}, nil, err
	}
	diag := make(map[int]Diagnosis, len(res.OpStats))
	for id, st := range res.OpStats {
		diag[id] = Diagnosis{Utilization: st.Utilization}
	}
	return Estimate{LatencyMs: res.LatencyMs, ThroughputEPS: res.ThroughputEPS}, diag, nil
}

func TestWeightedCostNormalization(t *testing.T) {
	// Best latency and best throughput → cost 0.
	c := WeightedCost(10, 100, 10, 20, 50, 100, 0.5)
	if c != 0 {
		t.Fatalf("optimal candidate cost %v", c)
	}
	// Worst on both → 1.
	c = WeightedCost(20, 50, 10, 20, 50, 100, 0.5)
	if c != 1 {
		t.Fatalf("worst candidate cost %v", c)
	}
	// Degenerate range → 0 contribution.
	if WeightedCost(5, 5, 5, 5, 5, 5, 0.5) != 0 {
		t.Fatal("degenerate normalization")
	}
	// Weight extremes.
	if WeightedCost(20, 100, 10, 20, 50, 100, 1) != 1 {
		t.Fatal("latency-only weight")
	}
	if WeightedCost(20, 100, 10, 20, 50, 100, 0) != 0 {
		t.Fatal("throughput-only weight")
	}
}

func TestTuneBeatsNaiveOnHighRate(t *testing.T) {
	q := linear(600_000)
	c := testCluster(t)
	res, err := Tune(context.Background(), q, c, EstimatorFunc(oracle), DefaultTuneOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates < 5 {
		t.Fatalf("only %d candidates enumerated", res.Candidates)
	}
	// Naive plan: everything at 1 — heavily backpressured at 600k ev/s.
	naive := queryplan.NewPQP(q)
	if err := cluster.Place(naive, c); err != nil {
		t.Fatal(err)
	}
	naiveEst, err := oracle(context.Background(), naive, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.ThroughputEPS <= naiveEst.ThroughputEPS {
		t.Fatalf("tuned throughput %v not above naive %v", res.Estimate.ThroughputEPS, naiveEst.ThroughputEPS)
	}
	if res.Estimate.LatencyMs >= naiveEst.LatencyMs {
		t.Fatalf("tuned latency %v not below naive %v", res.Estimate.LatencyMs, naiveEst.LatencyMs)
	}
}

func TestTuneRespectsWeightBounds(t *testing.T) {
	q := linear(1000)
	c := testCluster(t)
	bad := DefaultTuneOptions()
	bad.Weight = 1.5
	if _, err := Tune(context.Background(), q, c, EstimatorFunc(oracle), bad); err == nil {
		t.Fatal("accepted weight > 1")
	}
}

func TestTuneDeterministic(t *testing.T) {
	q := linear(100_000)
	c := testCluster(t)
	r1, err := Tune(context.Background(), q, c, EstimatorFunc(oracle), DefaultTuneOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Tune(context.Background(), q, c, EstimatorFunc(oracle), DefaultTuneOptions())
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := r1.Plan.DegreesVector(), r2.Plan.DegreesVector()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("tune not deterministic: %v vs %v", v1, v2)
		}
	}
}

func TestTunePlansWithinCores(t *testing.T) {
	q := linear(4_000_000)
	c := testCluster(t)
	res, err := Tune(context.Background(), q, c, EstimatorFunc(oracle), DefaultTuneOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range q.Ops {
		if res.Plan.Degree(o.ID) > c.TotalCores() {
			t.Fatalf("degree %d exceeds cluster cores", res.Plan.Degree(o.ID))
		}
	}
}

func chainedFilters(rate float64, n int) *queryplan.Query {
	fs := make([]queryplan.FilterSpec, n)
	for i := range fs {
		fs[i] = queryplan.FilterSpec{Func: queryplan.CmpLE, LiteralClass: queryplan.TypeString, Selectivity: 0.95}
	}
	return queryplan.ChainedFilters(n, queryplan.SourceSpec{EventRate: rate, TupleWidth: 5, DataType: queryplan.TypeString}, fs)
}

// Autopipelining: on a query whose fused filter chain saturates its single
// thread, greedy must split the chain to raise throughput.
func TestGreedySplitsSaturatedChain(t *testing.T) {
	q := chainedFilters(600_000, 4)
	c := testCluster(t)
	res, err := Greedy(q, c, observeOracle, 24, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Observations < 2 || res.Observations > 24 {
		t.Fatalf("observations %d", res.Observations)
	}
	if len(res.Plan.NoChain) == 0 {
		t.Fatal("greedy never split a saturated chain")
	}
	// Degrees stay at 1: autopipelining never replicates operators.
	for _, o := range q.Ops {
		if res.Plan.Degree(o.ID) != 1 {
			t.Fatalf("greedy replicated an operator: %v", res.Plan.DegreesVector())
		}
	}
	// The split plan must out-perform the fully chained naive plan.
	naive := queryplan.NewPQP(q)
	if err := cluster.Place(naive, c); err != nil {
		t.Fatal(err)
	}
	naiveEst, err := oracle(context.Background(), naive, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.ThroughputEPS <= naiveEst.ThroughputEPS {
		t.Fatalf("split throughput %v not above chained %v", res.Estimate.ThroughputEPS, naiveEst.ThroughputEPS)
	}
}

func TestGreedyStopsAtLocalOptimum(t *testing.T) {
	q := chainedFilters(100, 3) // trivial load: splitting only adds cost
	c := testCluster(t)
	res, err := Greedy(q, c, observeOracle, 50, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.NoChain) != 0 {
		t.Fatalf("greedy split chains on a trivial query: %v", res.Plan.NoChain)
	}
	if res.Observations >= 50 {
		t.Fatal("greedy burned the whole budget without improvement")
	}
}

func TestGreedyRejectsBadBudget(t *testing.T) {
	if _, err := Greedy(linear(1000), testCluster(t), observeOracle, 0, 0.5); err == nil {
		t.Fatal("accepted zero budget")
	}
}

func TestDhalionRemovesBackpressure(t *testing.T) {
	q := linear(600_000)
	c := testCluster(t)
	res, err := Dhalion(q, c, runtimeObserve, DefaultDhalionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatal("dhalion converged without reconfiguring a backpressured query")
	}
	// Final plan must not be backpressured.
	_, diag, err := runtimeObserve(res.Plan, c)
	if err != nil {
		t.Fatal(err)
	}
	for id, d := range diag {
		if d.Utilization > 1.0 {
			t.Fatalf("operator %d still saturated (util %v) after dhalion", id, d.Utilization)
		}
	}
}

func TestDhalionStableOnIdleQuery(t *testing.T) {
	q := linear(200)
	c := testCluster(t)
	res, err := Dhalion(q, c, runtimeObserve, DefaultDhalionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Fatalf("dhalion reconfigured an idle query %d times", res.Rounds)
	}
	for _, o := range q.Ops {
		if res.Plan.Degree(o.ID) != 1 {
			t.Fatalf("idle query scaled: %v", res.Plan.DegreesVector())
		}
	}
}

func TestDhalionOptionValidation(t *testing.T) {
	q := linear(1000)
	c := testCluster(t)
	bad := DefaultDhalionOptions()
	bad.MaxRounds = 0
	if _, err := Dhalion(q, c, runtimeObserve, bad); err == nil {
		t.Fatal("accepted zero rounds")
	}
	bad = DefaultDhalionOptions()
	bad.TargetUtil = 0
	if _, err := Dhalion(q, c, runtimeObserve, bad); err == nil {
		t.Fatal("accepted zero target utilization")
	}
}

func TestLogScoreMonotonicity(t *testing.T) {
	// Lower latency → lower (better) score at wt=1.
	a := logScore(Estimate{LatencyMs: 10, ThroughputEPS: 100}, 1)
	b := logScore(Estimate{LatencyMs: 20, ThroughputEPS: 100}, 1)
	if a >= b {
		t.Fatal("logScore not monotone in latency")
	}
	// Higher throughput → lower score at wt=0.
	a = logScore(Estimate{LatencyMs: 10, ThroughputEPS: 200}, 0)
	b = logScore(Estimate{LatencyMs: 10, ThroughputEPS: 100}, 0)
	if a >= b {
		t.Fatal("logScore not monotone in throughput")
	}
	if math.IsNaN(logScore(Estimate{}, 0.5)) {
		t.Fatal("logScore NaN on zero estimate")
	}
}

// Against a perfect cost oracle on a small search space, the tuner's pick
// must be close to the global optimum found by exhaustive enumeration.
func TestTuneNearExhaustiveOptimum(t *testing.T) {
	q := linear(300_000)
	c, err := cluster.New(2, []cluster.NodeType{{Name: "m510", Cores: 8, FreqGHz: 2.0, MemGB: 64}}, 10)
	if err != nil {
		t.Fatal(err)
	}

	// Exhaustive search over filter/aggregate degrees 1..8 (source and sink
	// fixed at 1): 64 plans, all scored on true weighted cost.
	type cand struct {
		est Estimate
		fd  int
		ad  int
	}
	var all []cand
	latMin, latMax := math.Inf(1), math.Inf(-1)
	tptMin, tptMax := math.Inf(1), math.Inf(-1)
	for fd := 1; fd <= 8; fd++ {
		for ad := 1; ad <= 8; ad++ {
			p := queryplan.NewPQP(q)
			p.SetDegree(1, fd)
			p.SetDegree(2, ad)
			if err := cluster.Place(p, c); err != nil {
				t.Fatal(err)
			}
			e, err := oracle(context.Background(), p, c)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, cand{est: e, fd: fd, ad: ad})
			latMin, latMax = math.Min(latMin, e.LatencyMs), math.Max(latMax, e.LatencyMs)
			tptMin, tptMax = math.Min(tptMin, e.ThroughputEPS), math.Max(tptMax, e.ThroughputEPS)
		}
	}
	best := math.Inf(1)
	for _, cd := range all {
		cost := WeightedCost(cd.est.LatencyMs, cd.est.ThroughputEPS, latMin, latMax, tptMin, tptMax, 0.5)
		if cost < best {
			best = cost
		}
	}

	res, err := Tune(context.Background(), q, c, EstimatorFunc(oracle), DefaultTuneOptions())
	if err != nil {
		t.Fatal(err)
	}
	tunedTrue, err := oracle(context.Background(), res.Plan, c)
	if err != nil {
		t.Fatal(err)
	}
	tunedCost := WeightedCost(tunedTrue.LatencyMs, tunedTrue.ThroughputEPS, latMin, latMax, tptMin, tptMax, 0.5)
	// The tuner explores a candidate subset, so allow a modest gap to the
	// global optimum of the full grid.
	if tunedCost > best+0.15 {
		t.Fatalf("tuned cost %.3f too far above exhaustive optimum %.3f (degrees %v)",
			tunedCost, best, res.Plan.DegreesVector())
	}
}

package optimizer

import (
	"fmt"
	"math"

	"zerotune/internal/cluster"
	"zerotune/internal/queryplan"
)

// Observe executes (here: simulates) a plan and reports the measured costs —
// the expensive runtime observation the online baselines burn their budget
// on.
type Observe func(p *queryplan.PQP, c *cluster.Cluster) (Estimate, error)

// logScore is the scale-free objective used for tie-breaking and by tests:
// wt·ln(latency) − (1−wt)·ln(throughput). Lower is better.
func logScore(e Estimate, wt float64) float64 {
	return wt*math.Log(math.Max(e.LatencyMs, 1e-9)) - (1-wt)*math.Log(math.Max(e.ThroughputEPS, 1e-9))
}

// minTptGain is the relative throughput improvement a pipeline split must
// yield for the greedy tuner to accept it (autopipelining's convergence
// criterion: stop when further splitting no longer pays off in rate).
const minTptGain = 0.05

// GreedyResult reports the plan an online tuner converged to and how many
// runtime observations (deployments) it consumed getting there.
type GreedyResult struct {
	Plan         *queryplan.PQP
	Estimate     Estimate
	Observations int
}

// Greedy is the autopipelining baseline [Tang & Gedik, TPDS 2012]: a
// throughput-oriented optimizer that exploits *pipeline* parallelism only.
// Operators keep parallelism degree 1 — the technique never replicates an
// operator. Starting from the engine's default plan (operators fused into
// chains that share one thread each), it greedily breaks the chain at the
// operator whose split most improves the observed throughput: a split puts
// the downstream stage on its own thread (core) at the price of an extra
// serialization/buffer hand-off. It converges when no single split improves
// throughput by at least 5% or the observation budget is exhausted. Every
// candidate evaluation deploys (simulates) the query — the trial-and-error
// cost the paper's C1 describes. Like the original, it reasons about
// sustained rate only; wt merely breaks ties.
func Greedy(q *queryplan.Query, c *cluster.Cluster, observe Observe, budget int, wt float64) (*GreedyResult, error) {
	if budget < 1 {
		return nil, fmt.Errorf("optimizer: greedy budget must be positive, got %d", budget)
	}
	cur := queryplan.NewPQP(q)
	if err := cluster.Place(cur, c); err != nil {
		return nil, err
	}
	curEst, err := observe(cur, c)
	if err != nil {
		return nil, err
	}
	obs := 1

	for obs < budget {
		// Split candidates: operators currently fused into a chain behind
		// an upstream operator.
		groups := cur.ChainGroups()
		size := make(map[int]int)
		for _, g := range groups {
			size[g]++
		}
		var candidates []int
		for _, o := range q.Ops {
			if cur.NoChain[o.ID] || size[groups[o.ID]] < 2 {
				continue
			}
			// Head operators of a chain cannot be split away from
			// themselves; an operator is splittable when its single
			// upstream shares its group.
			ups := q.Upstream(o.ID)
			if len(ups) == 1 && groups[ups[0]] == groups[o.ID] {
				candidates = append(candidates, o.ID)
			}
		}
		if len(candidates) == 0 {
			break
		}

		bestOp := -1
		bestTpt := curEst.ThroughputEPS * (1 + minTptGain)
		var bestPlan *queryplan.PQP
		var bestEst Estimate
		for _, opID := range candidates {
			if obs >= budget {
				break
			}
			cand := cur.Clone()
			cand.SetNoChain(opID, true)
			if err := cluster.Place(cand, c); err != nil {
				return nil, err
			}
			e, err := observe(cand, c)
			if err != nil {
				return nil, err
			}
			obs++
			better := e.ThroughputEPS > bestTpt
			if !better && bestOp >= 0 && e.ThroughputEPS == bestTpt {
				better = logScore(e, wt) < logScore(bestEst, wt)
			}
			if better {
				bestOp, bestTpt, bestPlan, bestEst = opID, e.ThroughputEPS, cand, e
			}
		}
		if bestOp < 0 {
			break // converged: no split pays off in throughput
		}
		cur, curEst = bestPlan, bestEst
	}
	return &GreedyResult{Plan: cur, Estimate: curEst, Observations: obs}, nil
}

package optimizer

import (
	"fmt"
	"math"

	"zerotune/internal/cluster"
	"zerotune/internal/queryplan"
)

// Diagnosis is the per-operator health signal a runtime monitor exposes —
// what Dhalion's symptom detectors consume.
type Diagnosis struct {
	// Utilization of the operator's hottest instance; values near or above
	// 1 indicate backpressure.
	Utilization float64
}

// RuntimeObserve deploys (simulates) a plan and returns measured costs plus
// per-operator diagnoses.
type RuntimeObserve func(p *queryplan.PQP, c *cluster.Cluster) (Estimate, map[int]Diagnosis, error)

// DhalionOptions tunes the controller's policy thresholds.
type DhalionOptions struct {
	// HighUtil triggers scale-up (Dhalion's backpressure symptom).
	HighUtil float64
	// LowUtil triggers scale-down (over-provisioning symptom).
	LowUtil float64
	// TargetUtil is the utilization the resolver scales toward.
	TargetUtil float64
	// MaxRounds bounds the reconfiguration loop.
	MaxRounds int
}

// DefaultDhalionOptions mirrors the published policy: scale up aggressively
// on backpressure, scale down conservatively, converge within ten rounds.
func DefaultDhalionOptions() DhalionOptions {
	return DhalionOptions{HighUtil: 0.9, LowUtil: 0.25, TargetUtil: 0.7, MaxRounds: 10}
}

// DhalionResult reports the converged plan and the reconfiguration cost.
type DhalionResult struct {
	Plan     *queryplan.PQP
	Estimate Estimate
	Rounds   int // reconfigurations performed (each one redeploys the query)
	// Trajectory holds the measured cost of every configuration the
	// controller ran through, in order (the initial all-1 deployment first,
	// the converged configuration last). Online tuning pays for these
	// intermediate deployments — the oscillation cost of the paper's C1.
	Trajectory []Estimate
}

// Dhalion is the self-regulating controller baseline [Floratou et al.]: it
// starts at parallelism 1 everywhere and iteratively repairs symptoms —
// scaling up operators whose instances are saturated and scaling down
// heavily under-utilized ones — observing the runtime after every
// reconfiguration, until the topology is healthy or the round budget is
// exhausted. This is online scaling: good at removing backpressure on
// simple structures, blind to global cost trade-offs on complex ones.
func Dhalion(q *queryplan.Query, c *cluster.Cluster, observe RuntimeObserve, opts DhalionOptions) (*DhalionResult, error) {
	if opts.MaxRounds < 1 {
		return nil, fmt.Errorf("optimizer: dhalion needs at least one round")
	}
	if opts.TargetUtil <= 0 || opts.TargetUtil >= 1 {
		return nil, fmt.Errorf("optimizer: dhalion target utilization %v outside (0,1)", opts.TargetUtil)
	}
	cur := queryplan.NewPQP(q)
	if err := cluster.Place(cur, c); err != nil {
		return nil, err
	}
	maxP := c.TotalCores()

	var est Estimate
	var trajectory []Estimate
	rounds := 0
	for ; rounds < opts.MaxRounds; rounds++ {
		var diag map[int]Diagnosis
		var err error
		est, diag, err = observe(cur, c)
		if err != nil {
			return nil, err
		}
		trajectory = append(trajectory, est)
		changed := false
		next := cur.Clone()
		for _, o := range q.Ops {
			d, ok := diag[o.ID]
			if !ok {
				continue
			}
			degree := cur.Degree(o.ID)
			switch {
			case d.Utilization > opts.HighUtil:
				// Resolver: scale so the observed load would sit at the
				// target utilization.
				want := int(math.Ceil(float64(degree) * d.Utilization / opts.TargetUtil))
				if want <= degree {
					want = degree + 1
				}
				if want > maxP {
					want = maxP
				}
				if want != degree {
					next.SetDegree(o.ID, want)
					changed = true
				}
			case d.Utilization < opts.LowUtil && degree > 1:
				want := int(math.Ceil(float64(degree) * math.Max(d.Utilization, 0.05) / opts.TargetUtil))
				if want >= degree {
					want = degree - 1
				}
				if want < 1 {
					want = 1
				}
				if want != degree {
					next.SetDegree(o.ID, want)
					changed = true
				}
			}
		}
		if !changed {
			break // topology healthy: converged
		}
		if err := cluster.Place(next, c); err != nil {
			return nil, err
		}
		cur = next
	}
	// Final observation for the converged plan (when the loop ended on a
	// reconfiguration).
	finalEst, _, err := observe(cur, c)
	if err != nil {
		return nil, err
	}
	est = finalEst
	if rounds == opts.MaxRounds || len(trajectory) == 0 ||
		trajectory[len(trajectory)-1] != est {
		trajectory = append(trajectory, est)
	}
	return &DhalionResult{Plan: cur, Estimate: est, Rounds: rounds, Trajectory: trajectory}, nil
}

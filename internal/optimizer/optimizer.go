// Package optimizer implements parallelism tuning (Sec. III-C3): given a
// query and a cluster, enumerate candidate parallelism configurations,
// predict their costs with a cost estimator (ZeroTune's GNN during normal
// operation; any CostEstimator in tests), and pick the configuration
// minimizing the Eq. 1 weighted cost. The package also provides the two
// baseline tuners the paper compares against: a greedy hill-climber on
// observed runtimes (Tang & Gedik) and a Dhalion-style backpressure
// controller (Floratou et al.).
package optimizer

import (
	"context"
	"fmt"
	"math"

	"zerotune/internal/cluster"
	"zerotune/internal/obs"
	"zerotune/internal/optisample"
	"zerotune/internal/queryplan"
	"zerotune/internal/tensor"
)

// Estimate is a cost prediction for one candidate plan.
type Estimate struct {
	LatencyMs     float64
	ThroughputEPS float64
}

// CostEstimator predicts the cost of executing a placed parallel query plan
// on a cluster — the what-if interface of Fig. 2.
type CostEstimator interface {
	Estimate(ctx context.Context, p *queryplan.PQP, c *cluster.Cluster) (Estimate, error)
}

// EstimatorFunc adapts a function to the CostEstimator interface.
type EstimatorFunc func(ctx context.Context, p *queryplan.PQP, c *cluster.Cluster) (Estimate, error)

// Estimate implements CostEstimator.
func (f EstimatorFunc) Estimate(ctx context.Context, p *queryplan.PQP, c *cluster.Cluster) (Estimate, error) {
	return f(ctx, p, c)
}

// BatchCostEstimator is an optional CostEstimator extension for estimators
// that can score many candidate plans at once — e.g. by fanning GNN forward
// passes across cores. Tune uses it when available, which turns the what-if
// sweep over the candidate set into a single parallel batch. Implementations
// must return one estimate per plan, in order.
type BatchCostEstimator interface {
	CostEstimator
	EstimateBatch(ctx context.Context, ps []*queryplan.PQP, c *cluster.Cluster) ([]Estimate, error)
}

// WeightedCost is Eq. 1: wt·C_L + (1−wt)·C_T with both costs min-max
// normalized into [0, 1] over the candidate set (0 best). Throughput is
// negated inside the normalization because it is maximized.
func WeightedCost(latency, throughput, latMin, latMax, tptMin, tptMax, wt float64) float64 {
	cl := normalize(latency, latMin, latMax)
	ct := 0.0
	if tptMax > tptMin {
		ct = 1 - normalize(throughput, tptMin, tptMax)
	}
	return wt*cl + (1-wt)*ct
}

func normalize(x, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	v := (x - lo) / (hi - lo)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// TuneOptions configures the ZeroTune optimizer.
type TuneOptions struct {
	// Weight wt of Eq. 1: 1 = latency only, 0 = throughput only.
	Weight float64
	// RandomCandidates adds this many OptiSample-explored configurations to
	// the deterministic candidate set.
	RandomCandidates int
	// Seed drives candidate exploration.
	Seed uint64
}

// DefaultTuneOptions balances latency and throughput equally and explores a
// moderate candidate set.
func DefaultTuneOptions() TuneOptions {
	return TuneOptions{Weight: 0.5, RandomCandidates: 16, Seed: 1}
}

// TuneResult reports the chosen plan and the what-if analysis behind it.
type TuneResult struct {
	Plan       *queryplan.PQP
	Estimate   Estimate
	Candidates int
	// Cost is the Eq. 1 weighted cost of the winner within the candidate
	// set (0 = dominated every candidate on both metrics).
	Cost float64
}

// Tune selects parallelism degrees for q on cluster c by enumerating
// candidate configurations around the analytical OptiSample assignment and
// choosing the one with the minimum predicted weighted cost. The context
// cancels the what-if sweep between estimates and scopes its spans.
func Tune(ctx context.Context, q *queryplan.Query, c *cluster.Cluster, est CostEstimator, opts TuneOptions) (*TuneResult, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("optimizer: %w", err)
	}
	if opts.Weight < 0 || opts.Weight > 1 {
		return nil, fmt.Errorf("optimizer: weight %v outside [0,1]", opts.Weight)
	}
	ctx, span := obs.StartSpan(ctx, "optimizer.tune")
	defer span.End()

	candidates, err := enumerate(q, c, opts)
	if err != nil {
		return nil, err
	}
	span.SetAttr("candidates", len(candidates))

	for _, cand := range candidates {
		if err := cluster.Place(cand, c); err != nil {
			return nil, err
		}
	}
	sweepCtx, sweep := obs.StartSpan(ctx, "optimizer.estimate")
	var estimates []Estimate
	if be, ok := est.(BatchCostEstimator); ok {
		estimates, err = be.EstimateBatch(sweepCtx, candidates, c)
		if err == nil && len(estimates) != len(candidates) {
			err = fmt.Errorf("batch estimator returned %d estimates for %d candidates",
				len(estimates), len(candidates))
		}
	} else {
		estimates = make([]Estimate, len(candidates))
		for i, cand := range candidates {
			if err = sweepCtx.Err(); err != nil {
				break
			}
			if estimates[i], err = est.Estimate(sweepCtx, cand, c); err != nil {
				break
			}
		}
	}
	sweep.End()
	if err != nil {
		return nil, fmt.Errorf("optimizer: estimate failed: %w", err)
	}

	latMin, latMax := math.Inf(1), math.Inf(-1)
	tptMin, tptMax := math.Inf(1), math.Inf(-1)
	for _, e := range estimates {
		latMin = math.Min(latMin, e.LatencyMs)
		latMax = math.Max(latMax, e.LatencyMs)
		tptMin = math.Min(tptMin, e.ThroughputEPS)
		tptMax = math.Max(tptMax, e.ThroughputEPS)
	}

	best := -1
	bestCost := math.Inf(1)
	for i, e := range estimates {
		cost := WeightedCost(e.LatencyMs, e.ThroughputEPS, latMin, latMax, tptMin, tptMax, opts.Weight)
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return &TuneResult{
		Plan:       candidates[best],
		Estimate:   estimates[best],
		Candidates: len(candidates),
		Cost:       bestCost,
	}, nil
}

// enumerate builds the candidate set: the analytical OptiSample plan, global
// scalings of it, per-operator perturbations, and optional random
// explorations — deduplicated by degree vector.
func enumerate(q *queryplan.Query, c *cluster.Cluster, opts TuneOptions) ([]*queryplan.PQP, error) {
	base := queryplan.NewPQP(q)
	if err := optisample.Exact().Assign(base, c, nil); err != nil {
		return nil, err
	}
	maxP := c.TotalCores()

	seen := make(map[string]bool)
	var out []*queryplan.PQP
	add := func(p *queryplan.PQP) {
		key := fmt.Sprint(p.DegreesVector())
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}

	scale := func(p *queryplan.PQP, opID int, factor float64) {
		d := int(math.Ceil(float64(p.Degree(opID)) * factor))
		if d < 1 {
			d = 1
		}
		if d > maxP {
			d = maxP
		}
		p.SetDegree(opID, d)
	}

	add(base.Clone())
	// Global multipliers around the analytical point.
	for _, f := range []float64{0.25, 0.5, 1.5, 2, 3, 4} {
		p := base.Clone()
		for _, o := range q.Ops {
			scale(p, o.ID, f)
		}
		add(p)
	}
	// Per-operator perturbations.
	for _, o := range q.Ops {
		for _, f := range []float64{0.5, 2} {
			p := base.Clone()
			scale(p, o.ID, f)
			add(p)
		}
	}
	// Random exploration.
	if opts.RandomCandidates > 0 {
		rng := tensor.NewRNG(opts.Seed)
		strat := optisample.Default()
		for i := 0; i < opts.RandomCandidates; i++ {
			p := queryplan.NewPQP(q)
			if err := strat.Assign(p, c, rng); err != nil {
				return nil, err
			}
			add(p)
		}
	}
	return out, nil
}

// Package integration_test exercises the library end-to-end across module
// boundaries: data generation → training → persistence → prediction →
// tuning → verification against the ground-truth engine, plus the adaptive
// controller on top — the full Fig. 2 workflow.
package integration_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"zerotune/internal/adaptive"
	"zerotune/internal/cluster"
	"zerotune/internal/core"
	"zerotune/internal/metrics"
	"zerotune/internal/optimizer"
	"zerotune/internal/queryplan"
	"zerotune/internal/simulator"
	"zerotune/internal/workload"
)

var (
	trainOnce sync.Once
	shared    *core.ZeroTune
	trainErr  error
)

// trainSmall builds a small but competent model once for the package.
func trainSmall(t *testing.T) *core.ZeroTune {
	t.Helper()
	trainOnce.Do(func() {
		gen := workload.NewSeenGenerator(123)
		items, err := gen.Generate(workload.SeenRanges().Structures, 700)
		if err != nil {
			trainErr = err
			return
		}
		opts := core.DefaultTrainOptions()
		opts.Hidden, opts.EncDepth, opts.HeadHidden = 32, 1, 32
		opts.Epochs = 35
		shared, _, trainErr = core.Train(context.Background(), items, opts)
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return shared
}

func TestEndToEndWorkflow(t *testing.T) {
	zt := trainSmall(t)

	// Persist and reload (the deployment path of Fig. 2: train offline,
	// ship the model).
	var buf bytes.Buffer
	if err := zt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Predict an unseen benchmark query on unseen hardware: everything
	// about this request is outside the training data.
	c, err := cluster.New(4, cluster.UnseenTypes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	q := queryplan.SpikeDetection(150_000)
	p := queryplan.NewPQP(q)
	pred, err := loaded.Predict(context.Background(), p, c)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := simulator.Simulate(p, c, simulator.Options{DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	// Zero-shot on a doubly-unseen request: demand sanity, not perfection.
	if q := metrics.QError(truth.LatencyMs, pred.LatencyMs); q > 50 {
		t.Fatalf("zero-shot latency q-error %v on unseen benchmark+hardware", q)
	}
	if q := metrics.QError(truth.ThroughputEPS, pred.ThroughputEPS); q > 50 {
		t.Fatalf("zero-shot throughput q-error %v on unseen benchmark+hardware", q)
	}

	// Tune: the recommended plan must beat the naive deployment on true
	// throughput at this saturating rate.
	res, err := loaded.Tune(context.Background(), q, c, optimizer.DefaultTuneOptions())
	if err != nil {
		t.Fatal(err)
	}
	tunedTruth, err := simulator.Simulate(res.Plan, c, simulator.Options{DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	naive := queryplan.NewPQP(q)
	if err := cluster.Place(naive, c); err != nil {
		t.Fatal(err)
	}
	naiveTruth, err := simulator.Simulate(naive, c, simulator.Options{DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	if naiveTruth.Backpressured && tunedTruth.ThroughputEPS <= naiveTruth.ThroughputEPS {
		t.Fatalf("tuned throughput %v not above backpressured naive %v",
			tunedTruth.ThroughputEPS, naiveTruth.ThroughputEPS)
	}
}

func TestEndToEndAdaptiveLoop(t *testing.T) {
	zt := trainSmall(t)
	c, err := cluster.New(6, cluster.SeenTypes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	ctl := adaptive.New(zt.Estimator())
	st, err := ctl.Deploy(context.Background(), queryplan.SpikeDetection(20_000), c)
	if err != nil {
		t.Fatal(err)
	}
	// Push the rate up 20×; the controller must react and land on a plan
	// that sustains the new rate.
	if _, err := ctl.Observe(context.Background(), st, c, 400_000); err != nil {
		t.Fatal(err)
	}
	truth, err := simulator.Simulate(st.Plan.Clone(), c, simulator.Options{DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	if truth.Backpressured {
		t.Fatalf("adaptive controller left the query backpressured: %v", st.Plan.DegreesVector())
	}
}

// All three tuners must agree on feasibility: whatever plan they pick must
// simulate without error and respect the cluster's core bound.
func TestEndToEndTunersProduceValidPlans(t *testing.T) {
	zt := trainSmall(t)
	gen := workload.NewSeenGenerator(321)
	q, c, err := gen.SampleQuery("2-way-join", 9)
	if err != nil {
		t.Fatal(err)
	}
	observe := func(p *queryplan.PQP, cl *cluster.Cluster) (optimizer.Estimate, error) {
		r, err := simulator.Simulate(p, cl, simulator.Options{DisableNoise: true})
		if err != nil {
			return optimizer.Estimate{}, err
		}
		return optimizer.Estimate{LatencyMs: r.LatencyMs, ThroughputEPS: r.ThroughputEPS}, nil
	}
	observeRT := func(p *queryplan.PQP, cl *cluster.Cluster) (optimizer.Estimate, map[int]optimizer.Diagnosis, error) {
		r, err := simulator.Simulate(p, cl, simulator.Options{DisableNoise: true})
		if err != nil {
			return optimizer.Estimate{}, nil, err
		}
		d := make(map[int]optimizer.Diagnosis)
		for id, st := range r.OpStats {
			d[id] = optimizer.Diagnosis{Utilization: st.Utilization}
		}
		return optimizer.Estimate{LatencyMs: r.LatencyMs, ThroughputEPS: r.ThroughputEPS}, d, nil
	}

	var plans []*queryplan.PQP
	tuned, err := zt.Tune(context.Background(), q, c, optimizer.DefaultTuneOptions())
	if err != nil {
		t.Fatal(err)
	}
	plans = append(plans, tuned.Plan)
	gr, err := optimizer.Greedy(q, c, observe, 16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plans = append(plans, gr.Plan)
	dh, err := optimizer.Dhalion(q, c, observeRT, optimizer.DefaultDhalionOptions())
	if err != nil {
		t.Fatal(err)
	}
	plans = append(plans, dh.Plan)

	for i, p := range plans {
		if err := p.Validate(); err != nil {
			t.Fatalf("tuner %d produced invalid plan: %v", i, err)
		}
		for _, o := range q.Ops {
			if p.Degree(o.ID) > c.TotalCores() {
				t.Fatalf("tuner %d exceeded cores: %v", i, p.DegreesVector())
			}
		}
		if _, err := simulator.Simulate(p.Clone(), c, simulator.Options{DisableNoise: true}); err != nil {
			t.Fatalf("tuner %d plan does not simulate: %v", i, err)
		}
	}
}

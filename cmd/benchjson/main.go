// Command benchjson converts `go test -bench` output into a stable JSON
// snapshot and, given a previous snapshot, enforces a regression budget.
// It is the machinery behind the committed BENCH_*.json perf trajectory:
//
//	go test -run '^$' -bench . -benchtime 2s ./... | benchjson -out BENCH_6.json
//	benchjson -in bench.txt -baseline BENCH_5_baseline.json \
//	    -check BenchmarkServePredict -max-regress-pct 10
//
// The parser understands the standard benchmark line shape — iterations,
// ns/op, B/op, allocs/op — plus any custom b.ReportMetric units (req/sec,
// gflops, graphs/sec), which land in the per-benchmark "metrics" map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the committed BENCH_*.json shape.
type Snapshot struct {
	CPU        string      `json:"cpu,omitempty"`
	GoVersion  string      `json:"go,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "benchmark output file (default: stdin)")
	out := flag.String("out", "", "write the JSON snapshot to this file (default: stdout)")
	baseline := flag.String("baseline", "", "previous snapshot to compare against")
	check := flag.String("check", "", "benchmark name prefix the regression budget applies to")
	maxRegress := flag.Float64("max-regress-pct", 10, "fail when ns/op of -check regresses more than this percent")
	tee := flag.Bool("tee", false, "copy the raw benchmark output to stderr while parsing")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	snap, err := Parse(r, *tee)
	if err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines found in input"))
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(data)
	}

	if *baseline != "" {
		if err := compare(*baseline, snap, *check, *maxRegress); err != nil {
			fatal(err)
		}
	}
}

// Parse reads `go test -bench` output. Benchmark names are normalized by
// stripping the -GOMAXPROCS suffix so snapshots compare across machines.
func Parse(r io.Reader, tee bool) (*Snapshot, error) {
	snap := &Snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if tee {
			fmt.Fprintln(os.Stderr, line)
		}
		switch {
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "go: "):
			snap.GoVersion = strings.TrimSpace(strings.TrimPrefix(line, "go: "))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	return snap, nil
}

// parseLine parses one "BenchmarkX-8  N  v unit  v unit ..." line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsPerOp > 0
}

// compare enforces the regression budget of -check against the baseline
// snapshot and prints the delta for every benchmark present in both.
func compare(path string, cur *Snapshot, check string, maxRegressPct float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("benchjson: parse baseline %s: %w", path, err)
	}
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var failures []string
	for _, b := range cur.Benchmarks {
		old, ok := baseBy[b.Name]
		if !ok || old.NsPerOp <= 0 {
			continue
		}
		speedup := old.NsPerOp / b.NsPerOp
		fmt.Fprintf(os.Stderr, "benchjson: %-40s %12.0f -> %12.0f ns/op (%.2fx)\n",
			b.Name, old.NsPerOp, b.NsPerOp, speedup)
		if check != "" && strings.HasPrefix(b.Name, check) {
			regressPct := (b.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
			if regressPct > maxRegressPct {
				failures = append(failures, fmt.Sprintf(
					"%s regressed %.1f%% (%.0f -> %.0f ns/op, budget %.0f%%)",
					b.Name, regressPct, old.NsPerOp, b.NsPerOp, maxRegressPct))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchjson: %s", strings.Join(failures, "; "))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

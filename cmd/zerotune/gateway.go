package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"zerotune/internal/gateway"
	"zerotune/internal/serve"
)

// parseSLOClasses parses the -slo flag: a comma-separated list of
// name=rate[:burst[:priority]] entries. rate 0 means unlimited; burst
// defaults to max(rate, 1); priority defaults to 0.
func parseSLOClasses(spec string) ([]gateway.ClassConfig, error) {
	if spec == "" {
		return nil, nil
	}
	var classes []gateway.ClassConfig
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("gateway: -slo entry %q: want name=rate[:burst[:priority]]", entry)
		}
		parts := strings.Split(val, ":")
		if len(parts) > 3 {
			return nil, fmt.Errorf("gateway: -slo entry %q: too many fields", entry)
		}
		cfg := gateway.ClassConfig{Name: name}
		var err error
		if cfg.Rate, err = strconv.ParseFloat(parts[0], 64); err != nil {
			return nil, fmt.Errorf("gateway: -slo entry %q: rate: %w", entry, err)
		}
		if len(parts) > 1 {
			if cfg.Burst, err = strconv.ParseFloat(parts[1], 64); err != nil {
				return nil, fmt.Errorf("gateway: -slo entry %q: burst: %w", entry, err)
			}
		}
		if len(parts) > 2 {
			if cfg.Priority, err = strconv.Atoi(parts[2]); err != nil {
				return nil, fmt.Errorf("gateway: -slo entry %q: priority: %w", entry, err)
			}
		}
		classes = append(classes, cfg)
	}
	return classes, nil
}

// runGateway starts the scale-out front tier. Backends come from one of two
// sources: -backends URLs dial already-running `zerotune serve` replicas
// over HTTP, while -replicas N spins up N in-process replicas sharing one
// model file — a single-binary deployment that still exercises the full
// routing/admission/health stack.
func runGateway(args []string) error {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "listen address host:port (use :0 for an ephemeral port)")
	backends := fs.String("backends", "", "comma-separated replica base URLs (http://host:port)")
	replicas := fs.Int("replicas", 0, "spin up this many in-process replicas instead of -backends")
	model := fs.String("model", "model.json", "model path for -replicas mode")
	route := fs.String("route", "affinity", "routing policy: round-robin | least-loaded | affinity")
	queuePolicy := fs.String("queue-policy", "fcfs", "dispatch-queue ordering: fcfs | priority | sjf")
	queueDepth := fs.Int("queue-depth", 256, "max requests parked waiting for a dispatch slot")
	maxConcurrent := fs.Int("max-concurrent", 0, "max forwards in flight (0: 8 per replica)")
	slo := fs.String("slo", "", "SLO classes: name=rate[:burst[:priority]],... (rate 0 = unlimited)")
	probeInterval := fs.Duration("probe-interval", time.Second, "health-probe period (negative: disabled)")
	failThreshold := fs.Int("fail-threshold", 3, "consecutive failures before a replica is ejected")
	seed := fs.Uint64("seed", 1, "seed for deterministic rejoin-backoff jitter")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-forward deadline (negative: unbounded)")
	drain := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
	_ = fs.Parse(args)

	classes, err := parseSLOClasses(*slo)
	if err != nil {
		return err
	}

	var pool []serve.Backend
	var closers []func()
	switch {
	case *backends != "" && *replicas > 0:
		return errors.New("gateway: -backends and -replicas are mutually exclusive")
	case *backends != "":
		for i, u := range strings.Split(*backends, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			b, err := gateway.NewHTTPBackend(fmt.Sprintf("replica-%d", i), u, 0)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "gateway: backend %s -> %s\n", b.Name(), u)
			pool = append(pool, b)
		}
		if len(pool) == 0 {
			return errors.New("gateway: -backends parsed to an empty list")
		}
	case *replicas > 0:
		for i := 0; i < *replicas; i++ {
			s := serve.New(serve.Options{RequestTimeout: *reqTimeout})
			entry, err := s.ServeModelFile(*model)
			if err != nil {
				return fmt.Errorf("gateway: replica %d: %w", i, err)
			}
			name := fmt.Sprintf("replica-%d", i)
			fmt.Fprintf(os.Stderr, "gateway: in-process %s serving model %s\n", name, entry.ID)
			pool = append(pool, serve.NewInProcessBackend(name, s))
			closers = append(closers, s.Close)
		}
	default:
		return errors.New("gateway: need -backends URLs or -replicas N")
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()

	g, err := gateway.New(pool, gateway.Options{
		Route:          gateway.RoutePolicy(*route),
		Queue:          gateway.QueuePolicy(*queuePolicy),
		QueueDepth:     *queueDepth,
		MaxConcurrent:  *maxConcurrent,
		Classes:        classes,
		FailThreshold:  *failThreshold,
		ProbeInterval:  *probeInterval,
		RequestTimeout: *reqTimeout,
		Seed:           *seed,
	})
	if err != nil {
		return err
	}

	// Bind before announcing, same contract as serve: with -addr :0 the
	// resolved address lands on stdout and in /healthz.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("gateway: listen %s: %w", *addr, err)
	}
	bound := ln.Addr().String()
	g.SetBoundAddr(bound)
	fmt.Printf("zerotune gateway: listening on http://%s\n", bound)
	fmt.Fprintf(os.Stderr, "gateway: %d replicas, route=%s queue=%s on http://%s\n",
		len(pool), *route, *queuePolicy, bound)

	g.Start()
	defer g.Close()

	srv := &http.Server{Handler: g}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "received %s, draining (deadline %s)...\n", got, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	fmt.Fprintln(os.Stderr, g.Summary())
	if shutdownErr != nil {
		return fmt.Errorf("gateway: shutdown: %w", shutdownErr)
	}
	return nil
}

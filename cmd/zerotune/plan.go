package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"zerotune/internal/cluster"
	"zerotune/internal/core"
	"zerotune/internal/desim"
	"zerotune/internal/gateway"
	"zerotune/internal/loadgen"
	"zerotune/internal/queryplan"
	"zerotune/internal/serve"
	"zerotune/internal/workload"
)

// runPlan is the capacity planner: it answers "what is the maximum RPS this
// serve-tier configuration sustains inside a p99 SLO?" and "how do candidate
// configurations compare on identical load?" by running the seeded bench
// workload through the serve-tier discrete-event simulator instead of a live
// cluster. A full multi-scenario plan costs seconds of CPU; the same spec
// can then be replayed against real replicas with `zerotune bench` to check
// the simulator's answer.
func runPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	model := fs.String("model", "", "model to calibrate service timings from (omit with -service to plan without a model)")
	measureReps := fs.Int("measure-reps", 5, "repetitions per timing measurement when calibrating from -model")
	service := fs.String("service", "", "pin per-stage service times: gateway=2µs,encode=25µs,base=150µs,peritem=6µs,hit=3µs,fallback=10µs (pinning makes runs byte-reproducible)")

	seed := fs.Uint64("seed", 1, "seed for the arrival/class/body draws (same seed = byte-identical schedule and trace)")
	arrival := fs.String("arrival", "poisson", "interarrival process: poisson | gamma | weibull | uniform")
	cv := fs.Float64("cv", 1, "interarrival coefficient of variation (gamma/weibull)")
	diurnal := fs.Float64("diurnal", 0, "diurnal rate-envelope amplitude in [0,1)")
	diurnalPeriod := fs.Duration("diurnal-period", 0, "diurnal period (default: the step duration)")
	classMix := fs.String("classes", "", "SLO class mix of generated load: name=weight,...")
	corpus := fs.Int("corpus", 8, "number of distinct request bodies in the generated corpus")

	replicaList := fs.String("replicas", "1,3", "replica counts to compare, comma-separated (each is one scenario)")
	route := fs.String("route", "", "routing policy: affinity | round-robin | least-loaded (default affinity)")
	slo := fs.String("slo", "", "admission classes: name=rate[:burst[:priority]],...")
	batchWindow := fs.Duration("batch-window", 0, "micro-batch collection window (default: the serve tier's)")
	maxBatch := fs.Int("max-batch", 0, "micro-batch size cap (default: the serve tier's)")
	queueDepth := fs.Int("queue-depth", 0, "per-replica queue bound (default: the serve tier's)")
	cacheEntries := fs.Int("cache", 0, "per-replica cache entries (default: the serve tier's; negative disables)")
	failureProb := fs.Float64("failure-prob", 0, "per-flush forward failure probability (exercises breaker dynamics)")
	circuit := fs.Int("circuit-threshold", 0, "consecutive failures tripping the breaker (default: the serve tier's; negative disables)")

	p99 := fs.Duration("p99", 50*time.Millisecond, "SLO target: corrected p99 must stay inside this")
	goodput := fs.Float64("goodput-fraction", 0.95, "SLO target: goodput must cover this fraction of offered load")
	minRate := fs.Float64("min-rate", 50, "search floor (req/s)")
	maxRate := fs.Float64("max-rate", 50_000, "search ceiling (req/s)")
	iterations := fs.Int("iterations", 12, "bisection budget per scenario")
	stepDuration := fs.Duration("step-duration", 5*time.Second, "virtual horizon per evaluated rate")
	rate := fs.Float64("rate", 0, "skip the search: compare scenarios at this fixed offered rate")

	tracePath := fs.String("trace", "", "write the decision trace (every routing/queueing/caching decision) here")
	reportPath := fs.String("report", "", "write the machine-readable JSON report (benchjson-compatible) here")
	_ = fs.Parse(args)

	svc, err := planServiceModel(*service, *model, *seed, *measureReps)
	if err != nil {
		return err
	}
	counts, err := parseReplicaList(*replicaList)
	if err != nil {
		return err
	}
	classes, err := parseClassMix(*classMix)
	if err != nil {
		return err
	}
	sloClasses, err := parseSLOClasses(*slo)
	if err != nil {
		return err
	}
	bodies, err := benchBodies(*seed, *corpus)
	if err != nil {
		return err
	}
	spec := loadgen.Spec{
		Seed:             *seed,
		Arrival:          loadgen.ArrivalKind(*arrival),
		CV:               *cv,
		DiurnalAmplitude: *diurnal,
		DiurnalPeriod:    *diurnalPeriod,
		Classes:          classes,
		Bodies:           bodies,
	}

	// trace stays a true nil interface when no path was given — a typed-nil
	// *os.File would read as "tracing on" downstream.
	var trace io.Writer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		trace = f
	}

	scenarios := make([]desim.Scenario, 0, len(counts))
	for _, n := range counts {
		scenarios = append(scenarios, desim.Scenario{
			Name: fmt.Sprintf("replicas=%d", n),
			Config: desim.ServeConfig{
				Replicas:         n,
				BatchWindow:      *batchWindow,
				MaxBatch:         *maxBatch,
				QueueDepth:       *queueDepth,
				CacheEntries:     *cacheEntries,
				Route:            gateway.RoutePolicy(*route),
				Classes:          sloClasses,
				Service:          svc,
				CircuitThreshold: *circuit,
				FailureProb:      *failureProb,
				Seed:             *seed,
			},
		})
	}

	rep := &planReport{
		Mode:    "plan",
		Target:  "desim",
		Trace:   loadgen.HeaderFromSpec(spec),
		Service: svc,
	}
	if *rate > 0 {
		// Fixed-rate what-if: every scenario sees the same schedule.
		spec.Rate = *rate
		spec.Duration = *stepDuration
		rep.Mode = "plan-fixed"
		rep.Fixed, err = desim.Compare(spec, scenarios, trace)
		if err != nil {
			return err
		}
		fmt.Print(fixedTable(*rate, rep.Fixed))
	} else {
		target := desim.SLOTarget{P99: *p99, GoodputFraction: *goodput}
		opts := desim.SearchOptions{
			Spec:         spec,
			MinRPS:       *minRate,
			MaxRPS:       *maxRate,
			Iterations:   *iterations,
			StepDuration: *stepDuration,
			Trace:        trace,
		}
		for _, sc := range scenarios {
			res, err := desim.SearchMaxRPS(sc.Name, sc.Config, target, opts)
			if err != nil {
				return err
			}
			rep.Plans = append(rep.Plans, res)
		}
		fmt.Print(planTable(*p99, rep.Plans))
	}
	rep.buildBenchmarks()

	if *reportPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportPath, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "plan: report written to %s\n", *reportPath)
	}
	if trace != nil {
		fmt.Fprintf(os.Stderr, "plan: decision trace written to %s\n", *tracePath)
	}
	return nil
}

// planServiceModel resolves the simulator's cost table: pinned -service
// overrides beat -model calibration beat the committed defaults.
func planServiceModel(pin, model string, seed uint64, reps int) (desim.ServiceModel, error) {
	svc := desim.DefaultServiceModel()
	if model != "" {
		zt, _, err := core.LoadFile(model)
		if err != nil {
			return svc, fmt.Errorf("plan: %w", err)
		}
		gen := workload.NewSeenGenerator(seed)
		structures := workload.SeenRanges().Structures
		var plans []*queryplan.PQP
		var clu *cluster.Cluster
		for i := 0; i < 4; i++ {
			q, c, err := gen.SampleQuery(structures[i%len(structures)], uint64(i+1))
			if err != nil {
				return svc, fmt.Errorf("plan: sample plan %d: %w", i, err)
			}
			plans = append(plans, queryplan.NewPQP(q))
			if clu == nil {
				clu = c
			}
		}
		t, err := serve.MeasureServiceTimings(context.Background(), zt, plans, clu, reps)
		if err != nil {
			return svc, fmt.Errorf("plan: %w", err)
		}
		svc = desim.ServiceModelFromTimings(t)
		fmt.Fprintf(os.Stderr, "plan: calibrated from %s: encode=%s base=%s peritem=%s\n",
			model, time.Duration(svc.EncodeNs), time.Duration(svc.ForwardBaseNs), time.Duration(svc.ForwardPerItemNs))
	}
	if pin != "" {
		if err := applyServicePins(&svc, pin); err != nil {
			return svc, err
		}
	}
	return svc, nil
}

// applyServicePins parses "stage=duration,..." overrides onto the model.
func applyServicePins(svc *desim.ServiceModel, pin string) error {
	for _, entry := range strings.Split(pin, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("plan: -service entry %q: want stage=duration", entry)
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("plan: -service entry %q: %w", entry, err)
		}
		ns := d.Nanoseconds()
		switch name {
		case "gateway":
			svc.GatewayNs = ns
		case "encode":
			svc.EncodeNs = ns
		case "base":
			svc.ForwardBaseNs = ns
		case "peritem":
			svc.ForwardPerItemNs = ns
		case "hit":
			svc.CacheHitNs = ns
		case "fallback":
			svc.FallbackNs = ns
		default:
			return fmt.Errorf("plan: -service entry %q: unknown stage (want gateway|encode|base|peritem|hit|fallback)", entry)
		}
	}
	return nil
}

// parseReplicaList parses the -replicas scenario list ("1,3,6").
func parseReplicaList(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("plan: -replicas entry %q: want a positive count", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, errors.New("plan: -replicas names no scenarios")
	}
	return out, nil
}

// planReport is the machine-readable output; Benchmarks mirrors
// cmd/benchjson's schema like the bench report does.
type planReport struct {
	Mode       string                   `json:"mode"`
	Target     string                   `json:"target"`
	Trace      loadgen.TraceHeader      `json:"trace"`
	Service    desim.ServiceModel       `json:"service"`
	Plans      []*desim.PlanResult      `json:"plans,omitempty"`
	Fixed      []desim.ScenarioResult   `json:"fixed,omitempty"`
	Benchmarks []loadgen.BenchmarkEntry `json:"benchmarks"`
}

func (r *planReport) buildBenchmarks() {
	for _, p := range r.Plans {
		best := p.Best()
		r.Benchmarks = append(r.Benchmarks, loadgen.BenchmarkEntry{
			Name:       "plan/" + p.Scenario,
			Iterations: int64(best.Requests),
			NsPerOp:    best.Latency.P50 * 1e6,
			Metrics: map[string]float64{
				"max-rps":     p.MaxRPS,
				"fail-rps":    p.FailRPS,
				"p99-ms":      best.Latency.P99,
				"goodput-rps": best.GoodputRPS,
			},
		})
	}
	for _, f := range r.Fixed {
		r.Benchmarks = append(r.Benchmarks, loadgen.BenchmarkEntry{
			Name:       "plan/" + f.Scenario,
			Iterations: int64(f.Step.Requests),
			NsPerOp:    f.Step.Latency.P50 * 1e6,
			Metrics: map[string]float64{
				"offered-rps": f.Step.OfferedRPS,
				"goodput-rps": f.Step.GoodputRPS,
				"p99-ms":      f.Step.Latency.P99,
				"cache-hits":  float64(f.Stats.CacheHits),
				"degraded":    float64(f.Stats.Degraded),
			},
		})
	}
}

// planTable renders the search results, one row per scenario: the capacity
// interval and the operating point at the sustained rate.
func planTable(p99 time.Duration, plans []*desim.PlanResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "capacity under p99 ≤ %s:\n", p99)
	fmt.Fprintf(&b, "%14s %10s %10s %9s %9s %9s %6s\n",
		"scenario", "max rps", "knee <", "p50", "p99", "goodput", "evals")
	for _, p := range plans {
		best := p.Best()
		maxCol, failCol := "none", "—"
		if p.MaxRPS > 0 {
			maxCol = fmt.Sprintf("%.0f/s", p.MaxRPS)
		}
		if p.FailRPS > 0 {
			failCol = fmt.Sprintf("%.0f/s", p.FailRPS)
		}
		fmt.Fprintf(&b, "%14s %10s %10s %7.2fms %7.2fms %7.1f/s %6d\n",
			p.Scenario, maxCol, failCol, best.Latency.P50, best.Latency.P99, best.GoodputRPS, len(p.Evals))
	}
	return b.String()
}

// fixedTable renders the fixed-rate comparison.
func fixedTable(rate float64, fixed []desim.ScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenarios at %.0f req/s (shared arrival schedule):\n", rate)
	fmt.Fprintf(&b, "%14s %9s %9s %9s %8s %9s %9s %9s\n",
		"scenario", "goodput", "p50", "p99", "hits", "coalesced", "degraded", "rejected")
	for _, f := range fixed {
		fmt.Fprintf(&b, "%14s %7.1f/s %7.2fms %7.2fms %8d %9d %9d %9d\n",
			f.Scenario, f.Step.GoodputRPS, f.Step.Latency.P50, f.Step.Latency.P99,
			f.Stats.CacheHits, f.Stats.Coalesced, f.Stats.Degraded,
			f.Stats.AdmissionRejected+f.Stats.QueueRejected)
	}
	return b.String()
}

package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"zerotune/internal/gateway"
	"zerotune/internal/loadgen"
	"zerotune/internal/queryplan"
	"zerotune/internal/serve"
	"zerotune/internal/workload"
)

// parseClassMix parses the -classes flag: name=weight,... entries defining
// the SLO-class mix of generated load.
func parseClassMix(spec string) ([]loadgen.ClassShare, error) {
	if spec == "" {
		return nil, nil
	}
	var classes []loadgen.ClassShare
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bench: -classes entry %q: want name=weight", entry)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bench: -classes entry %q: weight: %w", entry, err)
		}
		classes = append(classes, loadgen.ClassShare{Name: name, Weight: w})
	}
	return classes, nil
}

// benchBodies builds n distinct /v1/predict payloads from the seeded
// workload generator, cycling the seen query structures. The corpus is a
// pure function of the seed, like everything else in a bench run.
func benchBodies(seed uint64, n int) ([][]byte, error) {
	if n < 1 {
		n = 1
	}
	gen := workload.NewSeenGenerator(seed)
	structures := workload.SeenRanges().Structures
	bodies := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		q, c, err := gen.SampleQuery(structures[i%len(structures)], uint64(i+1))
		if err != nil {
			return nil, fmt.Errorf("bench: sample body %d: %w", i, err)
		}
		req := serve.PredictRequest{
			Plan:    queryplan.NewPQP(q),
			Cluster: serve.ClusterSpec{Workers: len(c.Nodes)},
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("bench: encode body %d: %w", i, err)
		}
		bodies = append(bodies, b)
	}
	return bodies, nil
}

// benchTarget resolves what the harness drives: a remote URL, an in-process
// gateway fronting N replicas, or a single in-process serve instance. The
// returned closer tears down whatever was started.
func benchTarget(targetURL, model string, replicas int, slo string, timeout time.Duration) (loadgen.Target, string, func(), error) {
	if targetURL != "" {
		t, err := loadgen.NewHTTPTarget(strings.TrimRight(targetURL, "/"), nil)
		if err != nil {
			return nil, "", nil, err
		}
		return t, targetURL, func() {}, nil
	}
	if replicas > 0 {
		classes, err := parseSLOClasses(slo)
		if err != nil {
			return nil, "", nil, err
		}
		var pool []serve.Backend
		var closers []func()
		closeAll := func() {
			for _, c := range closers {
				c()
			}
		}
		for i := 0; i < replicas; i++ {
			s := serve.New(serve.Options{RequestTimeout: timeout})
			if _, err := s.ServeModelFile(model); err != nil {
				closeAll()
				return nil, "", nil, fmt.Errorf("bench: replica %d: %w", i, err)
			}
			pool = append(pool, serve.NewInProcessBackend(fmt.Sprintf("replica-%d", i), s))
			closers = append(closers, s.Close)
		}
		g, err := gateway.New(pool, gateway.Options{Classes: classes, RequestTimeout: timeout})
		if err != nil {
			closeAll()
			return nil, "", nil, err
		}
		g.Start()
		closers = append([]func(){g.Close}, closers...)
		return loadgen.HandlerTarget{Handler: g}, "gateway", closeAll, nil
	}
	s := serve.New(serve.Options{RequestTimeout: timeout})
	if _, err := s.ServeModelFile(model); err != nil {
		return nil, "", nil, fmt.Errorf("bench: %w", err)
	}
	return loadgen.HandlerTarget{Handler: s}, "serve", s.Close, nil
}

// runBench is the open-loop load harness: fixed-rate runs, saturation
// sweeps, and deterministic trace record/replay, all reporting
// coordinated-omission-corrected percentiles over the full per-request
// record.
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	target := fs.String("target", "", "remote base URL (http://host:port); default: in-process serve")
	model := fs.String("model", "model.json", "model path for in-process targets")
	replicas := fs.Int("replicas", 0, "front this many in-process replicas with the gateway")
	slo := fs.String("slo", "", "gateway SLO classes for -replicas: name=rate[:burst[:priority]],...")
	seed := fs.Uint64("seed", 1, "seed for the arrival/class/body draws (same seed = byte-identical schedule)")
	rate := fs.Float64("rate", 200, "mean offered load (req/s)")
	duration := fs.Duration("duration", 10*time.Second, "intended-send horizon")
	arrival := fs.String("arrival", "poisson", "interarrival process: poisson | gamma | weibull | uniform")
	cv := fs.Float64("cv", 1, "interarrival coefficient of variation (gamma/weibull)")
	diurnal := fs.Float64("diurnal", 0, "diurnal rate-envelope amplitude in [0,1)")
	diurnalPeriod := fs.Duration("diurnal-period", 0, "diurnal period (default: the duration)")
	classMix := fs.String("classes", "", "SLO class mix of generated load: name=weight,...")
	corpus := fs.Int("corpus", 8, "number of distinct request bodies in the generated corpus")
	maxRequests := fs.Int("max-requests", 0, "additionally cap the schedule length (0 = unlimited)")
	record := fs.String("record", "", "write the schedule (bodies, intended send times, classes) as a trace file")
	replay := fs.String("replay", "", "replay a recorded trace byte-exactly instead of generating a schedule")
	dry := fs.Bool("dry", false, "build (and -record) the schedule without sending any load")
	sweepMode := fs.Bool("sweep", false, "walk offered load upward to locate the saturation knee")
	sweepStart := fs.Float64("sweep-start", 0, "first sweep step's rate (default: -rate)")
	sweepFactor := fs.Float64("sweep-factor", 2, "rate multiplier between sweep steps")
	sweepSteps := fs.Int("sweep-steps", 5, "number of sweep steps")
	stepDuration := fs.Duration("step-duration", 5*time.Second, "per-step horizon in sweep mode")
	goodput := fs.Float64("goodput-fraction", 0.9, "a step whose goodput falls below this fraction of offered load is saturated")
	reportPath := fs.String("report", "", "write the machine-readable JSON report (benchjson-compatible) here")
	maxInFlight := fs.Int("max-in-flight", 1024, "cap on concurrently outstanding requests")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline (negative: unbounded)")
	_ = fs.Parse(args)

	if *sweepMode && (*record != "" || *replay != "") {
		return errors.New("bench: -sweep varies the rate per step; it cannot be combined with -record/-replay")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Build the workload: a replayed trace or a seeded schedule.
	var (
		header loadgen.TraceHeader
		reqs   []loadgen.Request
		spec   loadgen.Spec
		mode   = "fixed"
	)
	if *replay != "" {
		var err error
		header, reqs, err = loadgen.ReadTraceFile(*replay)
		if err != nil {
			return err
		}
		mode = "replay"
		fmt.Fprintf(os.Stderr, "bench: replaying %d requests from %s (seed %d, %s @ %g rps)\n",
			len(reqs), *replay, header.Seed, header.Arrival, header.RateRPS)
	} else {
		classes, err := parseClassMix(*classMix)
		if err != nil {
			return err
		}
		bodies, err := benchBodies(*seed, *corpus)
		if err != nil {
			return err
		}
		spec = loadgen.Spec{
			Seed:             *seed,
			Arrival:          loadgen.ArrivalKind(*arrival),
			Rate:             *rate,
			CV:               *cv,
			Duration:         *duration,
			MaxRequests:      *maxRequests,
			DiurnalAmplitude: *diurnal,
			DiurnalPeriod:    *diurnalPeriod,
			Classes:          classes,
			Bodies:           bodies,
		}
		if !*sweepMode {
			if reqs, err = spec.Schedule(); err != nil {
				return err
			}
			header = loadgen.HeaderFromSpec(spec)
		}
	}

	if *record != "" {
		if err := loadgen.WriteTraceFile(*record, header, reqs); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: recorded %d requests to %s\n", len(reqs), *record)
	}
	if *dry {
		fmt.Printf("bench: dry run, schedule of %d requests over %s not sent\n", len(reqs), *duration)
		return nil
	}

	tgt, name, closeTarget, err := benchTarget(*target, *model, *replicas, *slo, *timeout)
	if err != nil {
		return err
	}
	defer closeTarget()

	runOpts := loadgen.RunOptions{Target: tgt, MaxInFlight: *maxInFlight, Timeout: *timeout}
	var rep *loadgen.Report
	switch {
	case *sweepMode:
		start := *sweepStart
		if start == 0 {
			start = *rate
		}
		rep, err = loadgen.Sweep(ctx, spec, loadgen.SweepOptions{
			Start:           start,
			Factor:          *sweepFactor,
			Steps:           *sweepSteps,
			StepDuration:    *stepDuration,
			GoodputFraction: *goodput,
			Run:             runOpts,
		})
		if err != nil {
			return err
		}
		rep.Target = name
	default:
		offered := spec.Rate
		wall := spec.Duration
		if mode == "replay" {
			offered = header.RateRPS
			wall = time.Duration(header.DurationNs)
		}
		results, err := loadgen.Run(ctx, reqs, runOpts)
		if err != nil {
			return err
		}
		rep = loadgen.SingleStep(mode, name, header, offered, wall, results)
	}
	rep.BuildBenchmarks("bench/" + name)

	fmt.Print(rep.Table())
	if *reportPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportPath, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: report written to %s\n", *reportPath)
	}
	return nil
}

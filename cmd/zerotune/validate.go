package main

import (
	"errors"
	"flag"
	"fmt"

	"zerotune/internal/cluster"
	"zerotune/internal/desim"
	"zerotune/internal/queryplan"
	"zerotune/internal/simulator"
)

// runValidate cross-checks the analytical cost engine against the
// discrete-event simulator on one configuration: both implement the same
// engine semantics through entirely different code paths, so agreement is
// evidence the ground truth is self-consistent.
//
//	zerotune validate -query linear -rate 5000 -workers 2 [-duration 5000]
func runValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	query := fs.String("query", "linear", "query template")
	rate := fs.Float64("rate", 5000, "source event rate (ev/s); keep modest — desim simulates every tuple")
	workers := fs.Int("workers", 2, "cluster size")
	duration := fs.Float64("duration", 5000, "simulated horizon (ms) after warm-up")
	maxEvents := fs.Int("max-events", 0, "event budget before the simulation aborts (0 = desim's default)")
	_ = fs.Parse(args)

	q, err := buildQuery(*query, *rate)
	if err != nil {
		return err
	}
	c, err := cluster.New(*workers, cluster.SeenTypes(), 10)
	if err != nil {
		return err
	}
	// Align the models: desim has no output-buffer batching, coordination
	// overhead or noise.
	cm := simulator.DefaultCostModel()
	cm.NoiseSigma = 0
	cm.BufferFlushMs = 0
	cm.SyncPerInstanceMs = 0

	p := queryplan.NewPQP(q)
	ana, err := simulator.Simulate(p.Clone(), c, simulator.Options{Cost: &cm, DisableNoise: true})
	if err != nil {
		return err
	}
	dis, err := desim.Run(p.Clone(), c, desim.Options{
		Cost: &cm, DurationMs: *duration, WarmupMs: *duration / 5, MaxEvents: *maxEvents,
	})
	if errors.Is(err, desim.ErrEventBudget) {
		return fmt.Errorf("%w\nthe event budget bounds runaway simulations: the configuration is likely "+
			"past saturation (queues growing without bound). Lower -rate, shorten -duration, or raise "+
			"-max-events if the run is genuinely expected to be this large", err)
	}
	if err != nil {
		return err
	}

	fmt.Printf("configuration: %s at %.0f ev/s on %d workers\n\n", *query, *rate, *workers)
	fmt.Printf("%-22s %15s %15s %10s\n", "metric", "analytical", "discrete-event", "ratio")
	ratio := func(a, b float64) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", a/b)
	}
	fmt.Printf("%-22s %13.2fms %13.2fms %10s\n", "latency (avg)", ana.LatencyMs, dis.AvgLatencyMs,
		ratio(dis.AvgLatencyMs, ana.LatencyMs))
	fmt.Printf("%-22s %12.0f/s %12.0f/s %10s\n", "throughput", ana.ThroughputEPS, dis.IngestedEPS,
		ratio(dis.IngestedEPS, ana.ThroughputEPS))
	fmt.Printf("%-22s %15v %15v\n", "saturated", ana.Backpressured, dis.Saturated)
	fmt.Printf("%-22s %15s %15d\n", "sink deliveries", "-", dis.SinkDeliveries)
	fmt.Printf("%-22s %15s %15d\n", "max queue", "-", dis.MaxQueueLen)
	return nil
}

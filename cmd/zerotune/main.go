// Command zerotune is the CLI front-end of the library: generate labelled
// workloads, train and persist cost models, predict what-if costs, tune
// parallelism degrees, and regenerate every experiment of the paper.
//
// Usage:
//
//	zerotune datagen    -n 500 [-seed 1] [-structures linear,2-way-join]
//	zerotune train      -n 3000 [-epochs 60] [-hidden 48] -out model.json [-checkpoint ckpt.zt] [-checkpoint-every 5] [-resume ckpt.zt]
//	zerotune predict    -model model.json -query spike-detection -rate 10000 [-workers 4] [-degree 4]
//	zerotune tune       -model model.json -query 3-way-join -rate 100000 [-workers 6] [-weight 0.5]
//	zerotune serve      -model model.json -addr 127.0.0.1:8080 [-batch-window 2ms] [-batch-max 64] [-cache-size 4096] [-request-timeout 30s] [-learn] [-learn-min-samples 32] [-drift-mape 0.5] [-faults feedback.promote=every1]
//	zerotune gateway    -addr 127.0.0.1:8090 {-backends http://h1:p1,http://h2:p2 | -replicas 3 -model model.json} [-route affinity] [-queue-policy fcfs] [-slo gold=200:400:10,bronze=50]
//	zerotune chaos      -model model.json [-seed 1] [-requests 120] [-log events.log] [-circuit-threshold 3] [-probe-every 4]
//	zerotune bench      -model model.json [-seed 1] [-rate 200] [-duration 10s] [-arrival poisson] [-sweep] [-record trace.ztrc | -replay trace.ztrc] [-report report.json]
//	zerotune plan       [-model model.json | -service encode=25µs,...] [-replicas 1,3] [-p99 50ms] [-rate 0] [-trace plan.trace] [-report plan.json]
//	zerotune simulate   -query linear -rate 100000 [-workers 4] [-degrees 1,4,4,1 | -plan plan.json]
//	zerotune validate   -query linear -rate 5000 [-workers 2] [-duration 5000]
//	zerotune experiment <id> [-scale quick|default|paper] [-csv dir]
//
// Experiment ids: fig3, tab4-seen, tab4-unseen, tab4-bench, fig5, fig6,
// fig7, fig8, fig9, fig10, fig10a, fig10b, fig11, readout-ablation, all.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"zerotune/internal/cluster"
	"zerotune/internal/core"
	"zerotune/internal/experiments"
	"zerotune/internal/optimizer"
	"zerotune/internal/queryplan"
	"zerotune/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "datagen":
		err = runDatagen(os.Args[2:])
	case "train":
		err = runTrain(os.Args[2:])
	case "predict":
		err = runPredict(os.Args[2:])
	case "tune":
		err = runTune(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "gateway":
		err = runGateway(os.Args[2:])
	case "chaos":
		err = runChaos(os.Args[2:])
	case "bench":
		err = runBench(os.Args[2:])
	case "plan":
		err = runPlan(os.Args[2:])
	case "simulate":
		err = runSimulate(os.Args[2:])
	case "validate":
		err = runValidate(os.Args[2:])
	case "experiment":
		err = runExperiment(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "zerotune: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zerotune:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: zerotune <command> [flags]

commands:
  datagen     generate a labelled workload and print it as JSON lines
  train       train a zero-shot cost model and write it to a file
  predict     predict latency/throughput for a benchmark query
  tune        recommend parallelism degrees for a query
  serve       expose predict/tune over HTTP with micro-batching, caching, and optional continual learning (-learn)
  gateway     front N serve replicas with routing, SLO admission and health probing
  chaos       replay a seeded fault schedule against an in-process server
  bench       open-loop load harness: seeded arrivals, RPS sweeps, trace record/replay
  plan        capacity planner: simulate the serve tier, binary-search max RPS under a p99 SLO
  simulate    run the ground-truth engine on one plan and print its costs
  validate    cross-check the analytical engine against the event simulator
  experiment  regenerate a table or figure of the paper (id or "all")`)
}

func runDatagen(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ExitOnError)
	n := fs.Int("n", 100, "number of queries")
	seed := fs.Uint64("seed", 1, "random seed")
	structs := fs.String("structures", "", "comma-separated structure list (default: seen structures)")
	_ = fs.Parse(args)

	structures := workload.SeenRanges().Structures
	if *structs != "" {
		structures = strings.Split(*structs, ",")
	}
	gen := workload.NewSeenGenerator(*seed)
	items, err := gen.Generate(structures, *n)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	for _, it := range items {
		row := map[string]any{
			"template":       it.Plan.Query.Template,
			"degrees":        it.Plan.DegreesVector(),
			"workers":        len(it.Cluster.Nodes),
			"latency_ms":     it.LatencyMs,
			"throughput_eps": it.ThroughputEPS,
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

func loadModel(path string) (*core.ZeroTune, error) {
	zt, legacy, err := core.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if legacy {
		fmt.Fprintf(os.Stderr, "note: %s is a legacy bare-JSON model without a checksum; re-save it "+
			"(zerotune train -out %s) to get the durable checksummed format\n", path, path)
	}
	return zt, nil
}

// buildQuery instantiates one of the benchmark query templates by name.
func buildQuery(name string, rate float64) (*queryplan.Query, error) {
	switch name {
	case "spike-detection":
		return queryplan.SpikeDetection(rate), nil
	case "smart-grid-local":
		return queryplan.SmartGridLocal(rate), nil
	case "smart-grid-global":
		return queryplan.SmartGridGlobal(rate), nil
	default:
		gen := workload.NewSeenGenerator(42)
		q, _, err := gen.SampleQuery(name, 1)
		if err != nil {
			return nil, err
		}
		for _, o := range q.Sources() {
			o.EventRate = rate
		}
		return q, nil
	}
}

func runPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	model := fs.String("model", "model.json", "model path")
	query := fs.String("query", "spike-detection", "query template")
	rate := fs.Float64("rate", 10_000, "source event rate (ev/s)")
	workers := fs.Int("workers", 4, "cluster size")
	degree := fs.Int("degree", 0, "uniform parallelism degree (0 = 1 per operator)")
	_ = fs.Parse(args)

	zt, err := loadModel(*model)
	if err != nil {
		return err
	}
	q, err := buildQuery(*query, *rate)
	if err != nil {
		return err
	}
	c, err := cluster.New(*workers, cluster.SeenTypes(), 10)
	if err != nil {
		return err
	}
	p := queryplan.NewPQP(q)
	if *degree > 0 {
		for _, o := range q.Ops {
			p.SetDegree(o.ID, *degree)
		}
	}
	pred, err := zt.Predict(context.Background(), p, c)
	if err != nil {
		return err
	}
	fmt.Printf("query=%s rate=%.0f workers=%d degrees=%v\n", *query, *rate, *workers, p.DegreesVector())
	fmt.Printf("predicted latency:    %.2f ms\n", pred.LatencyMs)
	fmt.Printf("predicted throughput: %.0f ev/s\n", pred.ThroughputEPS)
	return nil
}

func runTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	model := fs.String("model", "model.json", "model path")
	query := fs.String("query", "3-way-join", "query template")
	rate := fs.Float64("rate", 100_000, "source event rate (ev/s)")
	workers := fs.Int("workers", 6, "cluster size")
	weight := fs.Float64("weight", 0.5, "Eq. 1 latency weight wt in [0,1]")
	_ = fs.Parse(args)

	zt, err := loadModel(*model)
	if err != nil {
		return err
	}
	q, err := buildQuery(*query, *rate)
	if err != nil {
		return err
	}
	c, err := cluster.New(*workers, cluster.SeenTypes(), 10)
	if err != nil {
		return err
	}
	opts := optimizer.DefaultTuneOptions()
	opts.Weight = *weight
	res, err := zt.Tune(context.Background(), q, c, opts)
	if err != nil {
		return err
	}
	fmt.Printf("query=%s rate=%.0f workers=%d candidates=%d\n", *query, *rate, *workers, res.Candidates)
	fmt.Printf("recommended degrees: %v\n", res.Plan.DegreesVector())
	fmt.Printf("predicted latency:    %.2f ms\n", res.Estimate.LatencyMs)
	fmt.Printf("predicted throughput: %.0f ev/s\n", res.Estimate.ThroughputEPS)
	return nil
}

func runExperiment(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("experiment: missing id (fig3, tab4-seen, ..., all)")
	}
	id := args[0]
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	scale := fs.String("scale", "default", "quick | default | paper")
	csvDir := fs.String("csv", "", "also write each artifact's raw series as CSV into this directory")
	plot := fs.Bool("plot", false, "also render figure-type results as ASCII charts")
	_ = fs.Parse(args[1:])

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.Config{TrainQueries: 400, TestPerType: 30, Epochs: 12, Hidden: 24,
			FewShotQueries: 60, TuneQueriesPerType: 3, Seed: 1}
	case "default":
		cfg = experiments.DefaultConfig()
	case "paper":
		cfg = experiments.PaperScaleConfig()
	default:
		return fmt.Errorf("experiment: unknown scale %q", *scale)
	}
	l := experiments.NewLab(cfg)

	writeCSV := func(name string, res any) error {
		if *csvDir == "" {
			return nil
		}
		cw, ok := res.(interface{ WriteCSV(w io.Writer) error })
		if !ok {
			return nil
		}
		path := filepath.Join(*csvDir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		// Close errors matter here: a full disk surfaces at Close, and a
		// deferred unchecked Close would report a truncated CSV as success.
		if err := cw.WriteCSV(f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", path, err)
		}
		return nil
	}

	run := func(name string, fn func() (fmt.Stringer, error)) error {
		fmt.Printf("== %s ==\n", name)
		res, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(res.String())
		if *plot {
			if p, ok := res.(interface{ Plot() string }); ok {
				fmt.Println(p.Plot())
			}
		}
		return writeCSV(name, res)
	}

	table := map[string]func() (fmt.Stringer, error){
		"fig3":             func() (fmt.Stringer, error) { return experiments.RunFig3(32) },
		"tab4-seen":        func() (fmt.Stringer, error) { return l.RunTable4Seen() },
		"tab4-unseen":      func() (fmt.Stringer, error) { return l.RunTable4Unseen() },
		"tab4-bench":       func() (fmt.Stringer, error) { return l.RunTable4Benchmarks() },
		"fig5":             func() (fmt.Stringer, error) { return l.RunFig5ModelComparison() },
		"fig6":             func() (fmt.Stringer, error) { return l.RunFig6FewShot() },
		"fig9":             func() (fmt.Stringer, error) { return l.RunFig9DataEfficiency(nil) },
		"fig10a":           func() (fmt.Stringer, error) { return l.RunFig10aSpeedup() },
		"fig10b":           func() (fmt.Stringer, error) { return l.RunFig10bDhalion() },
		"fig11":            func() (fmt.Stringer, error) { return l.RunFig11Ablation() },
		"readout-ablation": func() (fmt.Stringer, error) { return l.RunReadoutAblation() },
	}

	runFig7 := func() error {
		a, err := l.RunFig7a()
		if err != nil {
			return err
		}
		fmt.Println(a.String())
		if err := writeCSV("fig7a", a); err != nil {
			return err
		}
		b, err := l.RunFig7b()
		if err != nil {
			return err
		}
		fmt.Println(b.String())
		if err := writeCSV("fig7b", b); err != nil {
			return err
		}
		c, panels, err := l.RunFig7c()
		if err != nil {
			return err
		}
		fmt.Println(c.String())
		for _, p := range panels {
			fmt.Println(p.String())
		}
		if err := writeCSV("fig7c", c); err != nil {
			return err
		}
		zero, few, err := l.RunFig7d()
		if err != nil {
			return err
		}
		fmt.Println(zero.String())
		fmt.Println(few.String())
		if err := writeCSV("fig7d-zeroshot", zero); err != nil {
			return err
		}
		return writeCSV("fig7d-fewshot", few)
	}
	runFig8 := func() error {
		names := []string{"fig8a-width", "fig8b-rate", "fig8c-duration", "fig8d-length", "fig8e-workers"}
		for i, fn := range []func() (*experiments.Fig8Result, error){
			l.RunFig8TupleWidth, l.RunFig8EventRate, l.RunFig8WindowDuration,
			l.RunFig8WindowLength, l.RunFig8Workers,
		} {
			res, err := fn()
			if err != nil {
				return err
			}
			fmt.Println(res.String())
			if *plot {
				fmt.Println(res.Plot())
			}
			if err := writeCSV(names[i], res); err != nil {
				return err
			}
		}
		return nil
	}

	switch id {
	case "fig7":
		return runFig7()
	case "fig8":
		return runFig8()
	case "fig10":
		if err := run("fig10a", table["fig10a"]); err != nil {
			return err
		}
		return run("fig10b", table["fig10b"])
	case "all":
		order := []string{"fig3", "tab4-seen", "tab4-unseen", "tab4-bench", "fig5", "fig6"}
		for _, name := range order {
			if err := run(name, table[name]); err != nil {
				return err
			}
		}
		fmt.Println("== fig7 ==")
		if err := runFig7(); err != nil {
			return err
		}
		fmt.Println("== fig8 ==")
		if err := runFig8(); err != nil {
			return err
		}
		for _, name := range []string{"fig9", "fig10a", "fig10b", "fig11", "readout-ablation"} {
			if err := run(name, table[name]); err != nil {
				return err
			}
		}
		return nil
	default:
		fn, ok := table[id]
		if !ok {
			return fmt.Errorf("experiment: unknown id %q", id)
		}
		return run(id, fn)
	}
}

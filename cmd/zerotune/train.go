package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"zerotune/internal/artifact"
	"zerotune/internal/core"
	"zerotune/internal/gnn"
	"zerotune/internal/obs"
	"zerotune/internal/workload"
)

// trainCheckpointKind tags checkpoint artifacts so a model file and a
// checkpoint file can never be confused for each other.
const trainCheckpointKind = "zerotune-train-checkpoint"

// trainCheckpoint is the durable snapshot of an in-flight training run.
// The hyperparameters ride along because the corpus and the model skeleton
// are regenerated from them on resume — a resume under different flags
// would silently train a different model, so the stored values win.
type trainCheckpoint struct {
	N      int             `json:"n"`
	Epochs int             `json:"epochs"`
	Hidden int             `json:"hidden"`
	Seed   uint64          `json:"seed"`
	State  *gnn.Checkpoint `json:"state"`
}

func loadTrainCheckpoint(path string) (*trainCheckpoint, error) {
	kind, payload, err := artifact.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("train: read checkpoint %s: %w", path, err)
	}
	if kind != trainCheckpointKind {
		return nil, fmt.Errorf("train: %s is a %q artifact, not a training checkpoint", path, kind)
	}
	var ck trainCheckpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return nil, fmt.Errorf("train: decode checkpoint %s: %w", path, err)
	}
	if ck.State == nil {
		return nil, fmt.Errorf("train: checkpoint %s has no training state", path)
	}
	return &ck, nil
}

func saveTrainCheckpoint(path string, ck *trainCheckpoint) error {
	payload, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	return artifact.WriteFile(path, trainCheckpointKind, payload)
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	n := fs.Int("n", 3000, "training corpus size")
	epochs := fs.Int("epochs", 60, "training epochs")
	hidden := fs.Int("hidden", 48, "hidden width")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "model.json", "output model path")
	ckptPath := fs.String("checkpoint", "", "checkpoint file path (empty: checkpointing disabled)")
	ckptEvery := fs.Int("checkpoint-every", 5, "checkpoint every N epochs")
	resume := fs.String("resume", "", "resume from this checkpoint file")
	tracePath := fs.String("trace", "", "write the training trace (per-epoch spans) as JSON to this file")
	compiled := fs.Bool("compiled", core.CompiledEnabled(),
		"after training, compile the fused inference engine and report its accuracy gate (default: ZEROTUNE_COMPILED)")
	_ = fs.Parse(args)

	var resumed *trainCheckpoint
	if *resume != "" {
		ck, err := loadTrainCheckpoint(*resume)
		if err != nil {
			return err
		}
		resumed = ck
		// Stored hyperparameters win: the corpus and model are rebuilt from
		// them, so flag values that disagree are ignored (and said so).
		if *n != ck.N || *epochs != ck.Epochs || *hidden != ck.Hidden || *seed != ck.Seed {
			fmt.Fprintf(os.Stderr, "resume: using checkpointed hyperparameters (n=%d epochs=%d hidden=%d seed=%d)\n",
				ck.N, ck.Epochs, ck.Hidden, ck.Seed)
		}
		*n, *epochs, *hidden, *seed = ck.N, ck.Epochs, ck.Hidden, ck.Seed
		if *ckptPath == "" {
			*ckptPath = *resume // keep checkpointing where we resumed from
		}
		fmt.Fprintf(os.Stderr, "resuming from %s at epoch %d/%d\n", *resume, ck.State.Epoch, ck.Epochs)
	}

	gen := workload.NewSeenGenerator(*seed)
	fmt.Fprintf(os.Stderr, "generating %d labelled queries...\n", *n)
	items, err := gen.Generate(workload.SeenRanges().Structures, *n)
	if err != nil {
		return err
	}
	ds, err := workload.Split(items, 0.8, 0.1, *seed+1)
	if err != nil {
		return err
	}
	// SIGINT/SIGTERM asks the trainer to finish the current epoch, write a
	// final checkpoint, and stop — not to die mid-gradient-step.
	interrupt := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		if got, ok := <-sig; ok {
			fmt.Fprintf(os.Stderr, "received %s, checkpointing and stopping...\n", got)
			close(interrupt)
		}
	}()

	topts := []core.TrainOption{
		core.WithArchitecture(*hidden, 1, *hidden),
		core.WithEpochs(*epochs),
		core.WithSeed(*seed),
		core.WithInterrupt(interrupt),
		core.WithProgress(func(epoch int, loss float64) {
			if epoch%5 == 0 {
				fmt.Fprintf(os.Stderr, "epoch %3d loss %.4f\n", epoch, loss)
			}
		}),
	}
	if resumed != nil {
		topts = append(topts, core.WithResume(resumed.State))
	}
	if *ckptPath != "" {
		wrapper := &trainCheckpoint{N: *n, Epochs: *epochs, Hidden: *hidden, Seed: *seed}
		topts = append(topts, core.WithCheckpoint(func(ck *gnn.Checkpoint) error {
			wrapper.State = ck
			return saveTrainCheckpoint(*ckptPath, wrapper)
		}, *ckptEvery))
	}
	opts, err := core.NewTrainOptions(topts...)
	if err != nil {
		return err
	}

	// With -trace, record the run's span tree (core.train → one train.epoch
	// per epoch with loss/grad-norm/timing attributes) and write it as JSON.
	ctx := context.Background()
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(4)
		ctx = obs.WithTracer(ctx, tracer)
	}

	zt, stats, err := core.Train(ctx, ds.Train, opts)
	signal.Stop(sig)
	close(sig)
	if err != nil {
		return err
	}
	if tracer != nil {
		data, jerr := json.MarshalIndent(tracer.Traces(), "", "  ")
		if jerr == nil {
			jerr = os.WriteFile(*tracePath, append(data, '\n'), 0o644)
		}
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "warning: could not write trace %s: %v\n", *tracePath, jerr)
		} else {
			fmt.Fprintf(os.Stderr, "training trace written to %s\n", *tracePath)
		}
	}
	if stats.Interrupted {
		fmt.Fprintf(os.Stderr, "interrupted after epoch %d/%d", stats.Epochs, *epochs)
		if *ckptPath != "" {
			fmt.Fprintf(os.Stderr, "; resume with: zerotune train -resume %s -out %s", *ckptPath, *out)
		}
		fmt.Fprintln(os.Stderr)
		return nil
	}
	fmt.Fprintf(os.Stderr, "trained in %s, final loss %.4f\n", stats.Duration.Round(1e9), stats.FinalLoss)

	if *compiled {
		// A dry-run of the serve-time compile step: the gate verdict tells the
		// operator now whether `serve -compiled` will accept this model.
		if err := zt.Compile(gnn.CompileOptions{}); err != nil {
			fmt.Fprintf(os.Stderr, "warning: compiled engine rejected: %v\n", err)
		} else {
			g := zt.Compiled().Gate
			fmt.Fprintf(os.Stderr, "compiled engine (%s) passed accuracy gate: max q-error %.6f over %d graphs (budget %.6f)\n",
				g.Engine, g.MaxQErr, g.Graphs, g.Threshold)
		}
	}

	if err := zt.SaveFile(*out); err != nil {
		return err
	}
	if *ckptPath != "" {
		// The run completed and the model is durable; the checkpoint has
		// served its purpose.
		if err := os.Remove(*ckptPath); err != nil && !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "warning: could not remove checkpoint %s: %v\n", *ckptPath, err)
		}
	}
	fmt.Fprintf(os.Stderr, "model written to %s\n", *out)
	return nil
}

package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"zerotune/internal/core"
	"zerotune/internal/fault"
	"zerotune/internal/serve"
)

// parseFaultSpec parses the -faults flag into error-mode schedules:
// point=everyN (deterministic, every Nth hit) or point=pP (seeded
// probability P per hit), comma-separated. Used by CI to force the
// feedback.promote rollback path without touching code.
func parseFaultSpec(spec string, seed uint64) (*fault.Registry, error) {
	reg := fault.New(seed)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, ok := strings.Cut(entry, "=")
		if !ok || name == "" || val == "" {
			return nil, fmt.Errorf("serve: -faults entry %q: want point=everyN or point=pP", entry)
		}
		s := fault.Schedule{Point: name, Mode: fault.ModeError}
		switch {
		case strings.HasPrefix(val, "every"):
			n, err := strconv.ParseUint(val[len("every"):], 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("serve: -faults entry %q: bad period", entry)
			}
			s.Every = n
		case strings.HasPrefix(val, "p"):
			p, err := strconv.ParseFloat(val[1:], 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("serve: -faults entry %q: bad probability", entry)
			}
			s.Prob = p
		default:
			return nil, fmt.Errorf("serve: -faults entry %q: want point=everyN or point=pP", entry)
		}
		reg.Install(s)
	}
	return reg, nil
}

// runServe starts the online prediction/tuning service: load + validate the
// model, serve the HTTP API, and on SIGINT/SIGTERM drain in-flight requests
// within the deadline before logging the final serving statistics.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	model := fs.String("model", "model.json", "model path")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address host:port")
	window := fs.Duration("batch-window", 2*time.Millisecond, "micro-batch coalescing window (negative: flush immediately)")
	maxBatch := fs.Int("batch-max", 64, "flush a micro-batch at this many plans")
	cacheSize := fs.Int("cache-size", 4096, "plan-fingerprint cache entries")
	drain := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-predict deadline before 503 (negative: unbounded)")
	debug := fs.Bool("debug", false, "enable /debug/traces and /debug/pprof endpoints")
	circuitThreshold := fs.Int("circuit-threshold", 5, "consecutive forward failures that trip the circuit breaker (negative: disabled)")
	circuitCooldown := fs.Duration("circuit-cooldown", 5*time.Second, "open-circuit wait before probing the learned path again")
	compiled := fs.Bool("compiled", core.CompiledEnabled(),
		"serve through the fused-batch inference engine; its accuracy gate becomes part of model validation (default: ZEROTUNE_COMPILED)")
	learn := fs.Bool("learn", false, "enable the closed continual-learning loop (/v1/feedback, drift-triggered fine-tune, auto-promote)")
	learnStore := fs.Int("learn-store", 2048, "feedback reservoir capacity")
	learnSeed := fs.Uint64("learn-seed", 1, "seed for reservoir eviction, holdout split and fine-tune schedule")
	learnDir := fs.String("learn-dir", "", "candidate artifact directory (default: the model's directory)")
	learnMin := fs.Int("learn-min-samples", 32, "feedback samples required before a fine-tune run")
	learnEpochs := fs.Int("learn-epochs", 0, "fine-tune epochs (0: the few-shot schedule's default)")
	learnMaxRegress := fs.Float64("learn-max-regress", 0, "relative holdout-MAPE margin a candidate may regress by and still promote")
	learnInterval := fs.Duration("learn-interval", 0, "additionally run the learner periodically (0: drift-trip only)")
	driftWindow := fs.Int("drift-window", 256, "drift detector sliding-window size")
	driftMin := fs.Int("drift-min-samples", 32, "window fill required before the detector may trip")
	driftMAPE := fs.Float64("drift-mape", 0.5, "MAPE threshold that trips a fine-tune run")
	driftPearson := fs.Float64("drift-pearson", 0, "Pearson-r floor that trips a fine-tune run (0: disabled)")
	faults := fs.String("faults", "", "activate fault injection: point=everyN|pP,... (error mode; e.g. feedback.promote=every1)")
	faultSeed := fs.Uint64("fault-seed", 1, "seed for probabilistic -faults schedules")
	_ = fs.Parse(args)

	if *faults != "" {
		reg, err := parseFaultSpec(*faults, *faultSeed)
		if err != nil {
			return err
		}
		fault.Activate(reg)
		defer fault.Deactivate()
		fmt.Fprintf(os.Stderr, "fault injection active: %s (seed %d)\n", *faults, *faultSeed)
	}

	opts := serve.Options{
		BatchWindow:      *window,
		MaxBatch:         *maxBatch,
		CacheSize:        *cacheSize,
		RequestTimeout:   *reqTimeout,
		Debug:            *debug,
		CircuitThreshold: *circuitThreshold,
		CircuitCooldown:  *circuitCooldown,
		Compiled:         *compiled,
	}
	if *learn {
		dir := *learnDir
		if dir == "" {
			dir = filepath.Dir(*model)
		}
		opts.Learn = &serve.LearnOptions{
			StoreSize:        *learnStore,
			Seed:             *learnSeed,
			Dir:              dir,
			MinSamples:       *learnMin,
			Epochs:           *learnEpochs,
			MaxShadowRegress: *learnMaxRegress,
			Interval:         *learnInterval,
			DriftWindow:      *driftWindow,
			DriftMinSamples:  *driftMin,
			DriftMAPE:        *driftMAPE,
			DriftPearson:     *driftPearson,
		}
	}
	s := serve.New(opts)
	entry, err := s.ServeModelFile(*model)
	if err != nil {
		return err
	}
	if *learn {
		learnCtx, stopLearn := context.WithCancel(context.Background())
		defer stopLearn()
		s.StartLearning(learnCtx)
		fmt.Fprintf(os.Stderr, "continual learning enabled (store %d, drift mape %.2f, artifacts in %s)\n",
			*learnStore, *driftMAPE, opts.Learn.Dir)
	}
	// Bind before announcing: with -addr :0 the kernel picks the port, and
	// both the stdout line and /healthz report the resolved address, so
	// tests and a fronting gateway can spawn replicas on ephemeral ports
	// without a bind race.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", *addr, err)
	}
	bound := ln.Addr().String()
	s.SetBoundAddr(bound)
	fmt.Printf("zerotune serve: listening on http://%s\n", bound)
	fmt.Fprintf(os.Stderr, "serving model %s (%s) on http://%s\n", entry.ID, *model, bound)
	if *debug {
		fmt.Fprintf(os.Stderr, "debug endpoints enabled: /debug/traces, /debug/pprof/\n")
	}

	srv := &http.Server{Handler: s}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		s.Close()
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "received %s, draining (deadline %s)...\n", got, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	// Handlers are done (or abandoned at the deadline); stop the coalescer
	// and emit the final observability digest.
	s.Close()
	fmt.Fprintln(os.Stderr, s.Summary())
	if shutdownErr != nil {
		return fmt.Errorf("serve: shutdown: %w", shutdownErr)
	}
	return nil
}

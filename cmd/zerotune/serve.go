package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zerotune/internal/core"
	"zerotune/internal/serve"
)

// runServe starts the online prediction/tuning service: load + validate the
// model, serve the HTTP API, and on SIGINT/SIGTERM drain in-flight requests
// within the deadline before logging the final serving statistics.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	model := fs.String("model", "model.json", "model path")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address host:port")
	window := fs.Duration("batch-window", 2*time.Millisecond, "micro-batch coalescing window (negative: flush immediately)")
	maxBatch := fs.Int("batch-max", 64, "flush a micro-batch at this many plans")
	cacheSize := fs.Int("cache-size", 4096, "plan-fingerprint cache entries")
	drain := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-predict deadline before 503 (negative: unbounded)")
	debug := fs.Bool("debug", false, "enable /debug/traces and /debug/pprof endpoints")
	circuitThreshold := fs.Int("circuit-threshold", 5, "consecutive forward failures that trip the circuit breaker (negative: disabled)")
	circuitCooldown := fs.Duration("circuit-cooldown", 5*time.Second, "open-circuit wait before probing the learned path again")
	compiled := fs.Bool("compiled", core.CompiledEnabled(),
		"serve through the fused-batch inference engine; its accuracy gate becomes part of model validation (default: ZEROTUNE_COMPILED)")
	_ = fs.Parse(args)

	s := serve.New(serve.Options{
		BatchWindow:      *window,
		MaxBatch:         *maxBatch,
		CacheSize:        *cacheSize,
		RequestTimeout:   *reqTimeout,
		Debug:            *debug,
		CircuitThreshold: *circuitThreshold,
		CircuitCooldown:  *circuitCooldown,
		Compiled:         *compiled,
	})
	entry, err := s.ServeModelFile(*model)
	if err != nil {
		return err
	}
	// Bind before announcing: with -addr :0 the kernel picks the port, and
	// both the stdout line and /healthz report the resolved address, so
	// tests and a fronting gateway can spawn replicas on ephemeral ports
	// without a bind race.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", *addr, err)
	}
	bound := ln.Addr().String()
	s.SetBoundAddr(bound)
	fmt.Printf("zerotune serve: listening on http://%s\n", bound)
	fmt.Fprintf(os.Stderr, "serving model %s (%s) on http://%s\n", entry.ID, *model, bound)
	if *debug {
		fmt.Fprintf(os.Stderr, "debug endpoints enabled: /debug/traces, /debug/pprof/\n")
	}

	srv := &http.Server{Handler: s}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		s.Close()
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "received %s, draining (deadline %s)...\n", got, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	// Handlers are done (or abandoned at the deadline); stop the coalescer
	// and emit the final observability digest.
	s.Close()
	fmt.Fprintln(os.Stderr, s.Summary())
	if shutdownErr != nil {
		return fmt.Errorf("serve: shutdown: %w", shutdownErr)
	}
	return nil
}

package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"zerotune/internal/cluster"
	"zerotune/internal/obs"
	"zerotune/internal/queryplan"
	"zerotune/internal/simulator"
)

// runSimulate executes the ground-truth engine on one plan and prints the
// cost breakdown — useful for exploring the simulator's behaviour and for
// validating model predictions by hand.
//
//	zerotune simulate -query linear -rate 100000 -workers 4 -degrees 1,4,4,1
//	zerotune simulate -plan plan.json -workers 4
func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	query := fs.String("query", "linear", "query template (ignored with -plan)")
	planPath := fs.String("plan", "", "JSON file holding a serialized parallel query plan")
	rate := fs.Float64("rate", 100_000, "source event rate (ev/s)")
	workers := fs.Int("workers", 4, "cluster size")
	nodeType := fs.String("nodetype", "", "restrict the cluster to one Table II node type")
	link := fs.Float64("link", 10, "network link speed (Gbps)")
	degrees := fs.String("degrees", "", "comma-separated per-operator degrees in ID order")
	noise := fs.Bool("noise", false, "apply measurement noise")
	trace := fs.Bool("trace", false, "print simulation span timings to stderr")
	_ = fs.Parse(args)

	var p *queryplan.PQP
	if *planPath != "" {
		data, err := os.ReadFile(*planPath)
		if err != nil {
			return err
		}
		p = &queryplan.PQP{}
		if err := json.Unmarshal(data, p); err != nil {
			return err
		}
	} else {
		q, err := buildQuery(*query, *rate)
		if err != nil {
			return err
		}
		p = queryplan.NewPQP(q)
		if *degrees != "" {
			parts := strings.Split(*degrees, ",")
			ids := make([]int, 0, len(p.Query.Ops))
			for _, o := range p.Query.Ops {
				ids = append(ids, o.ID)
			}
			sort.Ints(ids)
			if len(parts) != len(ids) {
				return fmt.Errorf("simulate: %d degrees for %d operators", len(parts), len(ids))
			}
			for i, part := range parts {
				d, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return fmt.Errorf("simulate: bad degree %q", part)
				}
				p.SetDegree(ids[i], d)
			}
		}
	}

	types := cluster.SeenTypes()
	if *nodeType != "" {
		t, err := cluster.TypeByName(*nodeType)
		if err != nil {
			return err
		}
		types = []cluster.NodeType{t}
	}
	c, err := cluster.New(*workers, types, *link)
	if err != nil {
		return err
	}

	// With -trace, time the run through the obs span machinery so the CLI
	// exercises the same plumbing the server exports on /debug/traces.
	var tracer *obs.Tracer
	ctx := context.Background()
	if *trace {
		tracer = obs.NewTracer(1)
		ctx = obs.WithTracer(ctx, tracer)
	}
	_, span := obs.StartSpan(ctx, "simulate.run")
	span.SetAttr("query", p.Query.Template)
	span.SetAttr("workers", len(c.Nodes))
	res, err := simulator.Simulate(p, c, simulator.Options{DisableNoise: !*noise})
	span.End()
	if err != nil {
		return err
	}
	if tracer != nil {
		for _, t := range tracer.Traces() {
			for _, sp := range t.Spans {
				fmt.Fprintf(os.Stderr, "trace %s span %-12s %.3fms\n", t.TraceID, sp.Name, float64(sp.Duration)/1e6)
			}
		}
	}
	fmt.Printf("plan:       %s\n", p)
	fmt.Printf("cluster:    %d workers, %d cores, %.0f Gbps\n", len(c.Nodes), c.TotalCores(), c.LinkGbps)
	fmt.Printf("latency:    %.2f ms\n", res.LatencyMs)
	fmt.Printf("throughput: %.0f ev/s\n", res.ThroughputEPS)
	fmt.Printf("capacity:   %.0f ev/s\n", res.CapacityEPS)
	fmt.Printf("backpressured: %v\n\n", res.Backpressured)

	ids := make([]int, 0, len(res.OpStats))
	for id := range res.OpStats {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Printf("%4s %-10s %8s %12s %12s %10s %6s\n", "op", "type", "degree", "in (ev/s)", "out (ev/s)", "util", "bneck")
	for _, id := range ids {
		st := res.OpStats[id]
		op := p.Query.Op(id)
		mark := ""
		if st.Bottleneck {
			mark = "*"
		}
		fmt.Printf("%4d %-10s %8d %12.0f %12.0f %9.1f%% %6s\n",
			id, op.Type.String(), p.Degree(id), st.InRate, st.OutRate, st.Utilization*100, mark)
	}
	return nil
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"zerotune/internal/client"
	"zerotune/internal/fault"
	"zerotune/internal/queryplan"
	"zerotune/internal/serve"
)

// runChaos replays a seed-deterministic fault schedule against an in-process
// server and asserts the serving invariants hold under fire:
//
//   - every error response carries the stable envelope with a known code —
//     no bare 500s, no unmapped failures;
//   - no request outlives its deadline by more than a stuck-watchdog margin;
//   - the model generation reported by /healthz never moves backwards,
//     reloads included;
//   - once the faults clear, the circuit breaker closes again and healthy
//     (non-degraded) answers return.
//
// The fault event log (-log) is a pure function of the seed: two runs with
// the same seed and model produce byte-identical logs, which is what CI
// diffs. Wall-clock nondeterminism is kept out of the loop by driving
// requests sequentially, flushing batches immediately (no coalescing
// window), and probing the circuit on a request-count schedule instead of a
// cooldown timer.
func runChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	model := fs.String("model", "model.json", "model path")
	seed := fs.Uint64("seed", 1, "fault schedule seed")
	requests := fs.Int("requests", 120, "predict requests to replay")
	logPath := fs.String("log", "", "write the fault event log to this file (byte-identical per seed)")
	reqTimeout := fs.Duration("request-timeout", 300*time.Millisecond, "per-predict deadline")
	threshold := fs.Int("circuit-threshold", 3, "consecutive forward failures that trip the circuit")
	probeEvery := fs.Int("probe-every", 4, "admit every Nth rejected request as the recovery probe")
	_ = fs.Parse(args)
	if *requests < 2 {
		return fmt.Errorf("chaos: -requests must be at least 2")
	}

	s := serve.New(serve.Options{
		BatchWindow:       -1, // flush immediately: one flush per request, deterministic
		MaxBatch:          8,
		CacheSize:         256,
		RequestTimeout:    *reqTimeout,
		CircuitThreshold:  *threshold,
		CircuitProbeEvery: *probeEvery,
		// Probing is count-based (probe-every); park the cooldown far away so
		// wall-clock time never influences breaker transitions.
		CircuitCooldown: time.Hour,
		// Learning on, so the feedback.ingest fault point sits in the line
		// of fire (the learner loop itself is not started here — promote
		// faults are covered by the feedback package's own tests and the
		// learn-e2e CI job).
		Learn: &serve.LearnOptions{},
	})
	defer s.Close()
	// Load before activating faults: the replay targets the serving path, not
	// its own setup.
	if _, err := s.ServeModelFile(*model); err != nil {
		return err
	}

	reg := fault.New(*seed)
	for _, sched := range chaosSchedule(*seed, *reqTimeout) {
		reg.Install(sched)
	}
	fault.Activate(reg)
	defer fault.Deactivate()

	h := &chaosHarness{srv: s, c: client.NewForHandler(s), deadline: *reqTimeout}
	clearAt := *requests / 2
	for i := 0; i < *requests; i++ {
		if i == clearAt {
			// Halfway the storm ends; the tail of the run must recover.
			reg.ClearAll()
		}
		h.predict(i, i >= clearAt)
		if i%10 == 9 {
			h.reload(*model)
			h.health()
		}
	}

	// Recovery invariants: with the schedule cleared for the whole second
	// half, the breaker must have closed and the learned path answered again.
	if st := s.Circuit(); st != serve.CircuitClosed {
		h.violate("circuit %s after %d fault-free requests, want closed", st, *requests-clearAt)
	}
	if h.healthyAfterClear == 0 {
		h.violate("no healthy (non-degraded) 200 after the faults cleared")
	}

	if *logPath != "" {
		if err := os.WriteFile(*logPath, []byte(reg.DumpEvents()), 0o644); err != nil {
			return fmt.Errorf("chaos: write event log: %w", err)
		}
	}

	snap := s.Snapshot()
	fmt.Printf("chaos: seed=%d requests=%d healthy=%d degraded=%d errors=%d stuck=%d fedback=%d\n",
		*seed, *requests, h.healthy, h.degraded, h.errored, h.stuck, h.fedback)
	fmt.Printf("chaos: faults=%d dropped_events=%d circuit_opens=%d served_degraded=%d\n",
		len(reg.Events()), reg.Dropped(), snap.CircuitOpens, snap.Degraded)
	for _, code := range sortedKeys(h.codes) {
		fmt.Printf("chaos: code %-18s %d\n", code, h.codes[code])
	}
	var metrics bytes.Buffer
	s.Metrics().WritePrometheus(&metrics)
	for _, line := range strings.Split(metrics.String(), "\n") {
		if strings.Contains(line, "degraded") || strings.Contains(line, "circuit") {
			fmt.Println("chaos: metric", line)
		}
	}

	if len(h.violations) > 0 {
		for _, v := range h.violations {
			fmt.Fprintln(os.Stderr, "chaos: VIOLATION:", v)
		}
		return fmt.Errorf("chaos: %d invariant violation(s)", len(h.violations))
	}
	fmt.Println("chaos: all invariants held")
	return nil
}

// chaosSchedule derives the per-point fault schedule from the seed alone, so
// the whole storm — which points fail, how often — is reproducible from one
// integer. The draws key on synthetic "chaos/" point names to stay
// independent of the registry's own hit counters.
func chaosSchedule(seed uint64, reqTimeout time.Duration) []fault.Schedule {
	prob := func(point string, lo, hi float64) float64 {
		return lo + (hi-lo)*fault.Uniform(seed, "chaos/"+point, 0)
	}
	return []fault.Schedule{
		// The forward path fails often enough to trip the breaker.
		{Point: fault.GNNForward, Mode: fault.ModeError, Prob: prob(fault.GNNForward, 0.35, 0.65)},
		// Occasional cache slot failures exercise the acquire retry loop.
		{Point: fault.CacheAcquire, Mode: fault.ModeError, Prob: prob(fault.CacheAcquire, 0.05, 0.15)},
		// Reloads fight both artifact decode and registry swap failures.
		{Point: fault.ArtifactRead, Mode: fault.ModeError, Prob: prob(fault.ArtifactRead, 0.15, 0.35)},
		{Point: fault.RegistrySwap, Mode: fault.ModeError, Prob: prob(fault.RegistrySwap, 0.15, 0.35)},
		// A few slow flushes (under the request deadline, so the sleep's real
		// duration never decides an outcome and determinism survives).
		{Point: fault.BatcherFlush, Mode: fault.ModeDelay, Prob: prob(fault.BatcherFlush, 0.05, 0.15),
			Delay: reqTimeout / 3, Limit: 3},
		// Feedback ingestion drops some observations on the floor; the
		// client must see the enveloped fault, never a half-ingested state.
		{Point: fault.FeedbackIngest, Mode: fault.ModeError, Prob: prob(fault.FeedbackIngest, 0.10, 0.30)},
	}
}

// stuckAfter is the watchdog margin: a request that has not answered this
// long past its deadline counts as stuck — the invariant the request-timeout
// machinery exists to prevent.
const stuckAfter = 5 * time.Second

type chaosHarness struct {
	srv      *serve.Server
	c        *client.Client
	deadline time.Duration

	healthy           int
	fedback           int
	healthyAfterClear int
	degraded          int
	errored           int
	stuck             int
	lastGen           uint64
	codes             map[string]int
	violations        []string
}

func (h *chaosHarness) violate(format string, args ...any) {
	h.violations = append(h.violations, fmt.Sprintf(format, args...))
}

// do drives one request through the shared in-process client under a
// stuck-request watchdog: the handler transport abandons a call whose
// context expires (the handler goroutine may still be writing to its
// private recorder, which is never read afterwards).
func (h *chaosHarness) do(path string, body any) (int, []byte, bool) {
	var data []byte
	if body != nil {
		var err error
		data, err = json.Marshal(body)
		if err != nil {
			h.violate("%s: marshal request: %v", path, err)
			return 0, nil, false
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), h.deadline+stuckAfter)
	defer cancel()
	status, payload, err := h.c.Call(ctx, path, data)
	if err != nil {
		// The in-process transport only errors when the watchdog context
		// expired before the handler answered.
		h.stuck++
		h.violate("stuck request: %s gave no answer %s past its %s deadline",
			path, stuckAfter, h.deadline)
		return 0, nil, false
	}
	return status, payload, true
}

// checkEnvelope asserts a non-200 response carries the stable error envelope
// with a code the server has mapped — the "no 500s without a mapped error
// code" invariant.
func (h *chaosHarness) checkEnvelope(what string, status int, payload []byte) {
	h.errored++
	switch status {
	case 400, 404, 422, 429, 499, 500, 503:
	default:
		h.violate("%s: unexpected status %d (%s)", what, status, payload)
		return
	}
	var body struct {
		Error serve.ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(payload, &body); err != nil || body.Error.Code == "" {
		h.violate("%s: status %d without the error envelope: %s", what, status, payload)
		return
	}
	for _, known := range serve.KnownErrorCodes() {
		if body.Error.Code == known {
			if h.codes == nil {
				h.codes = map[string]int{}
			}
			h.codes[body.Error.Code]++
			return
		}
	}
	h.violate("%s: status %d with unmapped error code %q", what, status, body.Error.Code)
}

func (h *chaosHarness) predict(i int, afterClear bool) {
	// Degrees and rates cycle so the run mixes fresh plans with cache hits.
	degree := 1 + i%4
	rate := []float64{10_000, 40_000, 90_000}[i%3]
	plan := queryplan.NewPQP(queryplan.SpikeDetection(rate))
	if degree > 1 {
		for _, o := range plan.Query.Ops {
			plan.SetDegree(o.ID, degree)
		}
	}
	req := serve.PredictRequest{Plan: plan, Cluster: serve.ClusterSpec{Workers: 4, LinkGbps: 10}}
	status, payload, ok := h.do("/v1/predict", &req)
	if !ok {
		return
	}
	if status != 200 {
		h.checkEnvelope(fmt.Sprintf("predict %d", i), status, payload)
		return
	}
	var resp serve.PredictResponse
	if err := json.Unmarshal(payload, &resp); err != nil {
		h.violate("predict %d: bad 200 payload: %v (%s)", i, err, payload)
		return
	}
	for name, v := range map[string]float64{"latency_ms": resp.LatencyMs, "throughput_eps": resp.ThroughputEPS} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			h.violate("predict %d: %s = %v, want finite non-negative", i, name, v)
		}
	}
	if resp.Degraded {
		h.degraded++
		return
	}
	h.healthy++
	if afterClear {
		h.healthyAfterClear++
	}
	if resp.Fingerprint != "" {
		h.feedback(i, &resp)
	}
}

// feedback closes the loop on a healthy prediction: observed costs shifted
// a fixed 10% off the prediction, so ingestion (and its fault point) is
// exercised without ever tripping the drift detector's default threshold.
func (h *chaosHarness) feedback(i int, pred *serve.PredictResponse) {
	req := serve.FeedbackRequest{
		Fingerprint:           pred.Fingerprint,
		ObservedLatencyMs:     pred.LatencyMs * 1.1,
		ObservedThroughputEPS: pred.ThroughputEPS * 1.1,
	}
	status, payload, ok := h.do("/v1/feedback", &req)
	if !ok {
		return
	}
	if status != 200 {
		h.checkEnvelope(fmt.Sprintf("feedback %d", i), status, payload)
		return
	}
	h.fedback++
}

func (h *chaosHarness) reload(path string) {
	status, payload, ok := h.do("/v1/reload", serve.ReloadRequest{Path: path})
	if !ok || status == 200 {
		return
	}
	// Under artifact.read / registry.swap faults a reload may fail — but
	// only with the stable envelope, and without displacing the old model
	// (health() checks the generation next).
	h.checkEnvelope("reload", status, payload)
}

func (h *chaosHarness) health() {
	status, payload, ok := h.do("/healthz", nil)
	if !ok {
		return
	}
	if status != 200 {
		h.violate("healthz: status %d (%s)", status, payload)
		return
	}
	var resp serve.HealthResponse
	if err := json.Unmarshal(payload, &resp); err != nil {
		h.violate("healthz: bad payload: %v (%s)", err, payload)
		return
	}
	if resp.Model.Gen < h.lastGen {
		h.violate("model generation moved backwards: %d -> %d", h.lastGen, resp.Model.Gen)
	}
	h.lastGen = resp.Model.Gen
}

// sortedKeys returns m's keys in order for stable output.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Smart grid: the DEBS smart-grid benchmark (local and global load
// queries, 10 s sliding window with a 3 s slide). Shows zero-shot what-if
// analysis across cluster sizes: the model prices both queries on clusters
// it has and has not seen, without deploying anything.
//
//	go run ./examples/smartgrid
package main

import (
	"context"
	"fmt"
	"log"

	"zerotune/internal/cluster"
	"zerotune/internal/core"
	"zerotune/internal/metrics"
	"zerotune/internal/queryplan"
	"zerotune/internal/simulator"
	"zerotune/internal/workload"
)

func main() {
	fmt.Println("training the cost model on 1000 synthetic queries...")
	gen := workload.NewSeenGenerator(21)
	items, err := gen.Generate(workload.SeenRanges().Structures, 1000)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultTrainOptions()
	opts.Epochs = 35
	zt, _, err := core.Train(context.Background(), items, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Note: the smart-grid queries use a 10 s sliding window — beyond the
	// training grid's largest window duration (3 s), so latency predictions
	// extrapolate (the paper's Fig. 8c shows exactly this effect at the
	// extreme ends of unseen parameter ranges).
	const rate = 100_000 // smart-plug readings per second
	queries := []*queryplan.Query{
		queryplan.SmartGridLocal(rate),
		queryplan.SmartGridGlobal(rate),
	}

	// Price both queries on a seen cluster type (m510) and an unseen one
	// (c6420) — the zero-shot claim is that the second works too.
	pools := []struct {
		name  string
		types []cluster.NodeType
	}{
		{"seen hardware (m510)", func() []cluster.NodeType {
			t, _ := cluster.TypeByName("m510")
			return []cluster.NodeType{t}
		}()},
		{"unseen hardware (c6420)", func() []cluster.NodeType {
			t, _ := cluster.TypeByName("c6420")
			return []cluster.NodeType{t}
		}()},
	}

	for _, pool := range pools {
		fmt.Printf("\n=== %s ===\n", pool.name)
		for _, q := range queries {
			fmt.Printf("%s at %d ev/s:\n", q.Name, rate)
			fmt.Printf("%10s %10s %16s %18s %10s\n",
				"workers", "degree", "pred lat (ms)", "pred tpt (ev/s)", "q-err lat")
			for _, workers := range []int{2, 4, 8} {
				c, err := cluster.New(workers, pool.types, 10)
				if err != nil {
					log.Fatal(err)
				}
				p := queryplan.NewPQP(q)
				for _, o := range q.Ops {
					if o.Type == queryplan.OpAggregate {
						p.SetDegree(o.ID, 2*workers)
					}
				}
				pred, err := zt.Predict(context.Background(), p, c)
				if err != nil {
					log.Fatal(err)
				}
				// Compare against the simulated ground truth so the
				// example shows real q-errors.
				truth, err := simulator.Simulate(p, c, simulator.Options{DisableNoise: true})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%10d %10d %16.1f %18.0f %10.2f\n",
					workers, 2*workers, pred.LatencyMs, pred.ThroughputEPS,
					metrics.QError(truth.LatencyMs, pred.LatencyMs))
			}
		}
	}
}

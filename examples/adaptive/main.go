// Adaptive: runtime re-tuning with the zero-shot model — the extension the
// paper mentions in Sec. I ("the proposed model can also be used to
// readjust parallelism degree at runtime"). A controller watches the
// observed source rate of a running query; when it drifts, it re-runs the
// what-if optimizer against the new rate and reconfigures only when the
// predicted win justifies it. No trial deployments, no oscillation.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"

	"zerotune/internal/adaptive"
	"zerotune/internal/cluster"
	"zerotune/internal/core"
	"zerotune/internal/queryplan"
	"zerotune/internal/simulator"
	"zerotune/internal/workload"
)

func main() {
	fmt.Println("training the cost model on 2500 synthetic queries (~1 min)...")
	gen := workload.NewSeenGenerator(31)
	items, err := gen.Generate(workload.SeenRanges().Structures, 2500)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultTrainOptions()
	opts.Epochs = 50
	zt, _, err := core.Train(context.Background(), items, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Deploy the spike-detection query at a calm overnight rate.
	q := queryplan.SpikeDetection(20_000)
	c, err := cluster.New(6, cluster.SeenTypes(), 10)
	if err != nil {
		log.Fatal(err)
	}
	ctl := adaptive.New(zt.Estimator())
	st, err := ctl.Deploy(context.Background(), q, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninitial deployment at 20k ev/s: degrees %v\n\n", st.Plan.DegreesVector())

	// The day unfolds: rates drift upward into the morning peak and back.
	fmt.Printf("%10s %12s %-22s %14s %14s\n", "observed", "reconfig?", "degrees", "latency (ms)", "tpt (ev/s)")
	for _, rate := range []float64{22_000, 60_000, 250_000, 400_000, 120_000, 25_000} {
		changed, err := ctl.Observe(context.Background(), st, c, rate)
		if err != nil {
			log.Fatal(err)
		}
		// Ground truth of the currently running plan at the observed rate.
		truth, err := simulator.Simulate(st.Plan.Clone(), c, simulator.Options{DisableNoise: true})
		if err != nil {
			log.Fatal(err)
		}
		mark := ""
		if changed {
			mark = "reconfigured"
		}
		fmt.Printf("%10.0f %12s %-22s %14.2f %14.0f\n",
			rate, mark, fmt.Sprint(st.Plan.DegreesVector()), truth.LatencyMs, truth.ThroughputEPS)
	}
	fmt.Printf("\ntotal reconfigurations: %d (each one a single what-if optimization, zero trial runs)\n",
		st.Reconfigurations)
}

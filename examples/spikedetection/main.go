// Spike detection: the Intel-lab sensor benchmark of the paper's Exp. 1 ③.
// Trains a model, lets the ZeroTune optimizer pick parallelism degrees for
// the spike-detection query, and verifies the choice against the simulated
// ground truth alongside a naive single-instance deployment.
//
//	go run ./examples/spikedetection
package main

import (
	"context"
	"fmt"
	"log"

	"zerotune/internal/cluster"
	"zerotune/internal/core"
	"zerotune/internal/optimizer"
	"zerotune/internal/queryplan"
	"zerotune/internal/simulator"
	"zerotune/internal/workload"
)

func main() {
	fmt.Println("training the cost model on 2500 synthetic queries (~1 min)...")
	gen := workload.NewSeenGenerator(7)
	items, err := gen.Generate(workload.SeenRanges().Structures, 2500)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultTrainOptions()
	opts.Epochs = 50
	zt, _, err := core.Train(context.Background(), items, opts)
	if err != nil {
		log.Fatal(err)
	}

	// The benchmark query: sensor stream → 2 s moving average → spike
	// filter → sink, at a rate that saturates a single instance.
	const rate = 400_000
	q := queryplan.SpikeDetection(rate)
	c, err := cluster.New(4, cluster.SeenTypes(), 10)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntuning parallelism for spike detection at %d ev/s on 4 workers...\n", rate)
	res, err := zt.Tune(context.Background(), q, c, optimizer.DefaultTuneOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommended degrees (src, avg, spike, sink): %v (from %d candidates)\n\n",
		res.Plan.DegreesVector(), res.Candidates)

	// Ground truth: execute both the recommendation and the naive plan on
	// the simulated cluster.
	report := func(name string, p *queryplan.PQP) {
		sim, err := simulator.Simulate(p, c, simulator.Options{DisableNoise: true})
		if err != nil {
			log.Fatal(err)
		}
		bp := ""
		if sim.Backpressured {
			bp = "  (backpressured!)"
		}
		fmt.Printf("%-22s latency %10.2f ms   throughput %10.0f ev/s%s\n",
			name, sim.LatencyMs, sim.ThroughputEPS, bp)
	}
	naive := queryplan.NewPQP(q)
	if err := cluster.Place(naive, c); err != nil {
		log.Fatal(err)
	}
	report("naive (all degrees 1):", naive)
	report("zerotune recommended:", res.Plan)
}

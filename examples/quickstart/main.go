// Quickstart: train a small zero-shot cost model on synthetic workloads,
// then predict the cost of a query it has never seen.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"zerotune/internal/cluster"
	"zerotune/internal/core"
	"zerotune/internal/queryplan"
	"zerotune/internal/workload"
)

func main() {
	// 1. Collect a labelled training workload: synthetic queries over the
	// paper's seen parameter grid, parallelism degrees enumerated with
	// OptiSample, costs measured on the simulated DSP cluster.
	fmt.Println("generating 1500 labelled training queries...")
	gen := workload.NewSeenGenerator(1)
	items, err := gen.Generate(workload.SeenRanges().Structures, 1500)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train the zero-shot model (a few seconds at this scale).
	fmt.Println("training the zero-shot cost model...")
	opts := core.DefaultTrainOptions()
	opts.Epochs = 40
	zt, stats, err := core.Train(context.Background(), items, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %s (final loss %.4f)\n\n", stats.Duration.Round(1e8), stats.FinalLoss)

	// 3. Predict costs for an unseen query — the spike-detection benchmark —
	// on a 4-worker cluster, across a range of parallelism degrees, without
	// deploying anything.
	c, err := cluster.New(4, cluster.SeenTypes(), 10)
	if err != nil {
		log.Fatal(err)
	}
	q := queryplan.SpikeDetection(300_000)
	fmt.Println("what-if costs for spike detection at 300k events/s:")
	fmt.Printf("%10s %14s %16s\n", "degree", "latency (ms)", "throughput (ev/s)")
	for _, degree := range []int{1, 2, 4, 8, 16} {
		p := queryplan.NewPQP(q)
		for _, o := range q.Ops {
			if o.Type != queryplan.OpSource && o.Type != queryplan.OpSink {
				p.SetDegree(o.ID, degree)
			}
		}
		pred, err := zt.Predict(context.Background(), p, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %14.2f %16.0f\n", degree, pred.LatencyMs, pred.ThroughputEPS)
	}
}

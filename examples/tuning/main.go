// Tuning: the full Exp. 5 workflow on one query — compare the parallelism
// degrees picked by ZeroTune's what-if optimizer, the greedy hill-climbing
// heuristic, and the Dhalion backpressure controller, counting how many
// real deployments each one needed.
//
//	go run ./examples/tuning
package main

import (
	"context"
	"fmt"
	"log"

	"zerotune/internal/cluster"
	"zerotune/internal/core"
	"zerotune/internal/optimizer"
	"zerotune/internal/queryplan"
	"zerotune/internal/simulator"
	"zerotune/internal/workload"
)

func observe(p *queryplan.PQP, c *cluster.Cluster) (optimizer.Estimate, error) {
	res, err := simulator.Simulate(p, c, simulator.Options{DisableNoise: true})
	if err != nil {
		return optimizer.Estimate{}, err
	}
	return optimizer.Estimate{LatencyMs: res.LatencyMs, ThroughputEPS: res.ThroughputEPS}, nil
}

func observeRuntime(p *queryplan.PQP, c *cluster.Cluster) (optimizer.Estimate, map[int]optimizer.Diagnosis, error) {
	res, err := simulator.Simulate(p, c, simulator.Options{DisableNoise: true})
	if err != nil {
		return optimizer.Estimate{}, nil, err
	}
	diag := make(map[int]optimizer.Diagnosis, len(res.OpStats))
	for id, st := range res.OpStats {
		diag[id] = optimizer.Diagnosis{Utilization: st.Utilization}
	}
	return optimizer.Estimate{LatencyMs: res.LatencyMs, ThroughputEPS: res.ThroughputEPS}, diag, nil
}

func main() {
	fmt.Println("training the cost model on 2500 synthetic queries (~1 min)...")
	gen := workload.NewSeenGenerator(3)
	items, err := gen.Generate(workload.SeenRanges().Structures, 2500)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultTrainOptions()
	opts.Epochs = 50
	zt, _, err := core.Train(context.Background(), items, opts)
	if err != nil {
		log.Fatal(err)
	}

	// The tuning task: a 2-way join at 500k ev/s per stream on 6 workers.
	tGen := workload.NewSeenGenerator(99)
	q, _, err := tGen.SampleQuery("2-way-join", 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range q.Sources() {
		o.EventRate = 500_000
	}
	c, err := cluster.New(6, cluster.SeenTypes(), 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntuning a 2-way join (%d operators) at 500k ev/s per stream on 6 workers\n\n", len(q.Ops))

	// ZeroTune: what-if predictions only; zero real deployments before the
	// final one.
	tuned, err := zt.Tune(context.Background(), q, c, optimizer.DefaultTuneOptions())
	if err != nil {
		log.Fatal(err)
	}
	ztTrue, err := observe(tuned.Plan, c)
	if err != nil {
		log.Fatal(err)
	}

	// Greedy: every probe is a real deployment.
	greedy, err := optimizer.Greedy(q, c, observe, 20, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	grTrue, err := observe(greedy.Plan, c)
	if err != nil {
		log.Fatal(err)
	}

	// Dhalion: every reconfiguration round redeploys the query.
	dh, err := optimizer.Dhalion(q, c, observeRuntime, optimizer.DefaultDhalionOptions())
	if err != nil {
		log.Fatal(err)
	}
	dhTrue, err := observe(dh.Plan, c)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-28s %14s %16s %14s\n", "tuner", "degrees", "latency (ms)", "tpt (ev/s)", "deployments")
	fmt.Printf("%-10s %-28s %14.2f %16.0f %14s\n", "zerotune", fmt.Sprint(tuned.Plan.DegreesVector()), ztTrue.LatencyMs, ztTrue.ThroughputEPS, "1 (what-if)")
	fmt.Printf("%-10s %-28s %14.2f %16.0f %14d\n", "greedy", fmt.Sprint(greedy.Plan.DegreesVector()), grTrue.LatencyMs, grTrue.ThroughputEPS, greedy.Observations)
	fmt.Printf("%-10s %-28s %14.2f %16.0f %14d\n", "dhalion", fmt.Sprint(dh.Plan.DegreesVector()), dhTrue.LatencyMs, dhTrue.ThroughputEPS, dh.Rounds+1)

	fmt.Printf("\nspeed-up vs greedy:  latency %.2fx, throughput %.2fx\n",
		grTrue.LatencyMs/ztTrue.LatencyMs, ztTrue.ThroughputEPS/grTrue.ThroughputEPS)
	fmt.Printf("speed-up vs dhalion: latency %.2fx, throughput %.2fx\n",
		dhTrue.LatencyMs/ztTrue.LatencyMs, ztTrue.ThroughputEPS/dhTrue.ThroughputEPS)
}
